"""Service plane under faults: hung daemons, lost responses, oversized
frames, and the persisted-backlog restart path."""

from __future__ import annotations

import json
import os
import shutil
import socket
import struct
import time

import pytest

from repro import faults
from repro.api.config import TunerConfig
from repro.cluster.protocol import MAX_MESSAGE_BYTES
from repro.errors import ServiceRejected, ServiceUnavailable
from repro.experiments.runner import clear_sessions
from repro.service import ServiceClient, ServiceHandle
from repro.service import protocol as verbs

from tests.service.test_service import APP, MACHINE, _FakePool

_HEADER = struct.Struct(">I")


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


@pytest.fixture
def fake_pool(monkeypatch):
    pool = _FakePool()
    monkeypatch.setattr("repro.experiments.runner.session_for", pool)
    yield pool
    pool.release()


def _daemon(**overrides) -> ServiceHandle:
    config = TunerConfig.from_env(
        backend="serial",
        progress=False,
        service_address="127.0.0.1:0",
        **overrides,
    )
    return ServiceHandle.start_in_thread(config)


class TestClientTimeouts:
    def test_listener_that_never_accepts_raises_service_unavailable(self):
        """Satellite regression: a bound-but-never-accepting socket
        must produce a typed ServiceUnavailable within the connect
        timeout, not a forever-blocked constructor."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)  # accepts into the backlog, answers never
            host, port = listener.getsockname()
            started = time.monotonic()
            with pytest.raises(ServiceUnavailable):
                ServiceClient(f"{host}:{port}", connect_timeout=0.5)
            assert time.monotonic() - started < 5.0
        finally:
            listener.close()

    def test_slow_handler_times_out_and_poisons_the_client(self, fake_pool):
        """A daemon verb stuck past ``request_timeout``: the call
        raises ServiceUnavailable, the connection is poisoned (a
        desynced stream must never serve another call), and a fresh
        client talks to the recovered daemon normally."""
        with _daemon(fault_spec="service.handler=delay:30#1") as daemon:
            client = ServiceClient(
                daemon.address, name="impatient", request_timeout=0.5
            )
            started = time.monotonic()
            with pytest.raises(ServiceUnavailable):
                client.metrics()
            assert time.monotonic() - started < 10.0
            # Poisoned: even instant verbs refuse on this connection.
            with pytest.raises(ServiceUnavailable, match="closed"):
                client.metrics()
            # The daemon itself is fine — the fault's limit is spent.
            with ServiceClient(daemon.address, name="fresh") as fresh:
                assert "uptime_s" in fresh.metrics()

    def test_dropped_response_frame_recovers_via_fresh_client(self, fake_pool):
        """The daemon computes an answer but the response frame is
        lost (client death / half-open link).  The client's request
        timeout turns that into ServiceUnavailable instead of an
        eternal hang."""
        with _daemon(fault_spec="service.result_frame=drop#1") as daemon:
            client = ServiceClient(
                daemon.address, name="lossy", request_timeout=0.5
            )
            with pytest.raises(ServiceUnavailable):
                client.metrics()
            with ServiceClient(daemon.address, name="retry") as fresh:
                assert "uptime_s" in fresh.metrics()


class TestOversizedFrames:
    def test_daemon_answers_oversized_frame_with_typed_bad_request(self):
        """Satellite regression: a length prefix past the frame limit
        draws a clean ``bad-request`` error (req_id None — no request
        could be parsed) and a hangup, never an allocation or a silent
        vanish."""
        with _daemon() as daemon:
            host, port = daemon.address.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.settimeout(10)
                verbs.send_frame(sock, verbs.hello("attacker", "attacker"))
                welcome = verbs.recv_frame(sock)
                assert welcome is not None and welcome["type"] == "welcome"
                sock.sendall(_HEADER.pack(MAX_MESSAGE_BYTES + 1) + b"xx")
                answer = verbs.recv_frame(sock)
                assert answer is not None
                assert answer["type"] == "error"
                assert answer["kind"] == verbs.BAD_REQUEST
                assert answer["req_id"] is None
                assert "exceeds" in answer["message"]
                # And the daemon hangs up: the stream is beyond repair.
                assert verbs.recv_frame(sock) is None

    def test_client_surfaces_connection_level_error_as_typed_failure(self):
        """A client whose connection went bad mid-stream gets a typed
        error (rejected or unavailable), never a hang or a mis-matched
        response."""
        with _daemon() as daemon:
            client = ServiceClient(
                daemon.address, name="bad-wire", request_timeout=5.0
            )
            # Corrupt the stream under the client: an impossible
            # length prefix.
            client._sock.sendall(_HEADER.pack(MAX_MESSAGE_BYTES + 1))
            with pytest.raises((ServiceRejected, ServiceUnavailable)):
                client.metrics()
            # Either way the client has poisoned itself.
            with pytest.raises(ServiceUnavailable, match="closed"):
                client.status("job-1")


class TestBacklogPersistence:
    def test_queued_jobs_are_persisted_eagerly_and_requeued_at_boot(
        self, fake_pool, tmp_path
    ):
        """The acceptance scenario: kill a daemon with queued jobs,
        boot a fresh one on the same cache directory, and the queued
        backlog resumes without any client re-submitting."""
        first_dir = str(tmp_path / "first")
        with _daemon(cache_dir=first_dir, service_max_jobs=1) as daemon:
            with ServiceClient(daemon.address, name="chaos") as client:
                running = client.submit(APP, MACHINE, seed=1)
                queued = [
                    client.submit(APP, MACHINE, seed=2),
                    client.submit(APP, MACHINE, seed=3),
                ]
                assert client.status(running) == "running"
                assert [client.status(j) for j in queued] == ["queued"] * 2
                # Eager persistence: the backlog is on disk *now*,
                # while the daemon is alive — that is what a SIGKILL
                # preserves.
                backlog_path = os.path.join(first_dir, "service_backlog.json")
                with open(backlog_path, "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
                assert snapshot["version"] == 1
                assert sorted(j["seed"] for j in snapshot["jobs"]) == [2, 3]
                assert all(j["app"] == APP for j in snapshot["jobs"])
                # Freeze the on-disk state as the kill instant sees it.
                second_dir = str(tmp_path / "second")
                os.makedirs(second_dir)
                shutil.copy(
                    backlog_path,
                    os.path.join(second_dir, "service_backlog.json"),
                )
            fake_pool.release()  # let the first daemon drain and die

        # "Reboot" against the frozen disk state.
        clear_sessions()
        with _daemon(cache_dir=second_dir, service_max_jobs=1) as daemon:
            with ServiceClient(daemon.address, name="observer") as client:
                metrics = client.metrics()
                assert metrics["backlog_restored"] == 2
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    jobs = client.metrics()["jobs"]
                    if jobs.get("done", 0) == 2:
                        break
                    time.sleep(0.05)
                assert client.metrics()["jobs"].get("done", 0) == 2
            # Consumed on restore: a third boot restores nothing.
            assert not os.path.exists(
                os.path.join(second_dir, "service_backlog.json")
            )

    def test_cancel_withdraws_from_the_persisted_backlog(
        self, fake_pool, tmp_path
    ):
        cache_dir = str(tmp_path)
        backlog_path = os.path.join(cache_dir, "service_backlog.json")
        with _daemon(cache_dir=cache_dir, service_max_jobs=1) as daemon:
            with ServiceClient(daemon.address, name="fickle") as client:
                client.submit(APP, MACHINE, seed=1)  # occupies the slot
                queued = client.submit(APP, MACHINE, seed=2)
                with open(backlog_path, "r", encoding="utf-8") as handle:
                    assert len(json.load(handle)["jobs"]) == 1
                assert client.cancel(queued)
                # Withdrawn: the persisted backlog shrank immediately
                # (the file disappears when nothing is queued).
                assert not os.path.exists(backlog_path)
            fake_pool.release()

    def test_unreadable_backlog_is_consumed_not_fatal(self, tmp_path):
        cache_dir = str(tmp_path)
        backlog_path = os.path.join(cache_dir, "service_backlog.json")
        with open(backlog_path, "w", encoding="utf-8") as handle:
            handle.write("{ torn mid-write")
        with _daemon(cache_dir=cache_dir) as daemon:
            with ServiceClient(daemon.address, name="boot") as client:
                assert client.metrics()["backlog_restored"] == 0
        assert not os.path.exists(backlog_path)  # consumed either way


class TestDaemonFaultSpecWiring:
    def test_daemon_installs_the_config_plan(self):
        with _daemon(fault_spec="seed=13;service.handler=delay:0.01"):
            plan = faults.installed_plan()
            assert plan is not None and plan.seed == 13

    def test_slow_handler_within_budget_still_answers(self, fake_pool):
        """A delay smaller than the request timeout degrades latency,
        never correctness."""
        with _daemon(fault_spec="service.handler=delay:0.05") as daemon:
            with ServiceClient(
                daemon.address, name="patient", request_timeout=10.0
            ) as client:
                assert "uptime_s" in client.metrics()
