"""The fault plane itself: spec grammar, determinism, lifecycle."""

from __future__ import annotations

import errno

import pytest

from repro import faults
from repro.api.config import TunerConfig
from repro.errors import ConfigError


class TestSpecGrammar:
    def test_full_clause_parses(self):
        plan = faults.parse_fault_plan(
            "seed=42; cluster.send_frame=drop@0.25#3; worker.compute=delay:0.05"
        )
        assert plan.seed == 42
        drop = plan.actions["cluster.send_frame"]
        assert (drop.kind, drop.rate, drop.limit) == ("drop", 0.25, 3)
        delay = plan.actions["worker.compute"]
        assert delay.kind == "delay"
        assert delay.seconds == pytest.approx(0.05)
        assert delay.rate == 1.0 and delay.limit is None

    def test_default_delay_seconds(self):
        plan = faults.parse_fault_plan("a=delay")
        assert plan.actions["a"].seconds == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "bad",
        [
            "just-a-word",
            "point=",
            "=drop",
            "seed=notanint",
            "p=frobnicate",  # unknown kind
            "p=drop@0",  # rate out of (0, 1]
            "p=drop@1.5",
            "p=drop@x",
            "p=drop#0",  # limit must be >= 1
            "p=drop#x",
        ],
    )
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(ConfigError):
            faults.parse_fault_plan(bad)

    def test_empty_clauses_are_ignored(self):
        plan = faults.parse_fault_plan(";;seed=1;;p=drop;;")
        assert plan.seed == 1
        assert set(plan.actions) == {"p"}

    def test_config_validates_fault_spec(self):
        with pytest.raises(ConfigError):
            TunerConfig(fault_spec="p=frobnicate")
        config = TunerConfig(fault_spec="seed=9;cache.put=oserror#1")
        assert config.fault_spec == "seed=9;cache.put=oserror#1"
        # Falsy-style strings mean "off", same grammar as the other
        # on/off knobs.
        assert TunerConfig(fault_spec="off").fault_spec is None
        assert TunerConfig(fault_spec="  ").fault_spec is None


class TestInjector:
    def test_noop_by_default(self):
        assert faults.fault_point("anything") is None
        assert faults.installed_plan() is None
        assert faults.snapshot() == {}

    def test_install_and_uninstall(self):
        faults.install("seed=1;p=drop")
        assert faults.installed_plan().seed == 1
        assert faults.fault_point("p").kind == "drop"
        assert faults.fault_point("other") is None
        faults.uninstall()
        assert faults.fault_point("p") is None

    def test_install_falsy_clears(self):
        faults.install("seed=1;p=drop")
        faults.install(None)
        assert faults.installed_plan() is None
        faults.install("seed=1;p=drop")
        faults.install("")
        assert faults.installed_plan() is None

    def test_reinstalling_identical_spec_keeps_counters(self):
        injector = faults.install("seed=1;p=drop#1")
        assert faults.fault_point("p") is not None
        assert faults.fault_point("p") is None  # limit exhausted
        again = faults.install("seed=1;p=drop#1")
        assert again is injector
        assert faults.fault_point("p") is None  # still exhausted

    def test_limit_bounds_firings(self):
        faults.install("p=drop#2")
        fired = [faults.fault_point("p") for _ in range(5)]
        assert [f is not None for f in fired] == [True, True, False, False, False]
        assert faults.snapshot()["p"] == {"checks": 5, "fired": 2}

    def test_rate_pattern_is_a_pure_function_of_seed(self):
        def pattern(seed, checks=200):
            faults.uninstall()
            faults.install(f"seed={seed};p=drop@0.3")
            return [faults.fault_point("p") is not None for _ in range(checks)]

        first = pattern(7)
        second = pattern(7)
        other = pattern(8)
        assert first == second
        assert first != other  # overwhelmingly likely for 200 draws
        fired = sum(first)
        assert 30 <= fired <= 90  # ~0.3 * 200, generous bounds

    def test_cross_point_interleaving_cannot_change_a_points_pattern(self):
        """The property the whole plane rests on: point A's firing
        pattern depends only on A's own check count, no matter how
        checks of other points interleave."""

        def pattern_of_a(interleave):
            faults.uninstall()
            faults.install("seed=3;a=drop@0.5;b=drop@0.5")
            out = []
            for i in range(100):
                if interleave:
                    faults.fault_point("b")  # noise between A's checks
                out.append(faults.fault_point("a") is not None)
            return out

        assert pattern_of_a(False) == pattern_of_a(True)

    def test_injected_oserror_maps_errno_names(self):
        plain = faults.injected_oserror(faults.FaultAction(kind="oserror"))
        assert plain.errno == errno.ENOSPC
        named = faults.injected_oserror(
            faults.FaultAction(kind="oserror", arg="EIO")
        )
        assert named.errno == errno.EIO

    def test_thread_safety_under_hammering(self):
        import threading

        faults.install("p=drop@0.5")
        counts = []

        def hammer():
            fired = sum(
                1 for _ in range(500) if faults.fault_point("p") is not None
            )
            counts.append(fired)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        snap = faults.snapshot()["p"]
        assert snap["checks"] == 2000
        assert snap["fired"] == sum(counts)


class TestSessionWiring:
    def test_session_installs_the_config_plan(self, tmp_path):
        from repro.api.session import Session

        config = TunerConfig.from_env(
            backend="serial", progress=False, fault_spec="seed=5;p=drop#1"
        )
        with Session(config):
            plan = faults.installed_plan()
            assert plan is not None and plan.seed == 5

    def test_session_without_spec_leaves_plane_untouched(self):
        from repro.api.session import Session

        faults.install("seed=5;p=drop#1")
        with Session(TunerConfig.from_env(backend="serial", progress=False)):
            assert faults.installed_plan() is not None  # not cleared
        faults.uninstall()
        with Session(TunerConfig.from_env(backend="serial", progress=False)):
            assert faults.installed_plan() is None  # not invented
