"""RetryPolicy and CircuitBreaker units (clock- and sleep-injected)."""

from __future__ import annotations

import pytest

from repro.core.retry import CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_first_try_success_never_sleeps(self):
        slept = []
        policy = RetryPolicy(attempts=3, sleep=slept.append)
        assert policy.call(lambda: 42) == 42
        assert slept == []

    def test_retries_then_succeeds(self):
        slept = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, sleep=slept.append)
        assert policy.call(flaky) == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_exhaustion_reraises_the_last_error(self):
        policy = RetryPolicy(attempts=2, sleep=lambda _s: None)
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")))

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not transient")

        policy = RetryPolicy(attempts=5, sleep=lambda _s: None)
        with pytest.raises(ValueError):
            policy.call(boom, retry_on=(OSError,))
        assert len(calls) == 1

    def test_on_retry_observer_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("x")
            return True

        policy = RetryPolicy(attempts=3, sleep=lambda _s: None)
        assert policy.call(
            flaky, on_retry=lambda exc, attempt: seen.append(attempt)
        )
        assert seen == [1, 2]

    def test_delay_schedule_is_seeded_and_bounded(self):
        policy = RetryPolicy(
            attempts=6, base_delay_s=0.01, max_delay_s=0.5, seed=11
        )
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second  # same seed, same schedule
        assert len(first) == 5
        assert all(0.01 <= d <= 0.5 for d in first)
        other = RetryPolicy(
            attempts=6, base_delay_s=0.01, max_delay_s=0.5, seed=12
        )
        assert list(other.delays()) != first

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("clock", lambda: self.now)
        return CircuitBreaker(**kwargs)

    def test_closed_allows_everything(self):
        breaker = self._breaker()
        assert breaker.state == CircuitBreaker.CLOSED
        assert all(breaker.allow() for _ in range(5))

    def test_failure_opens_and_blocks_until_reset_interval(self):
        breaker = self._breaker(failure_threshold=1, reset_after_s=5.0)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        self.now = 4.9
        assert not breaker.allow()
        self.now = 5.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # exactly one probe per interval

    def test_probe_success_closes(self):
        breaker = self._breaker(reset_after_s=1.0)
        breaker.record_failure()
        self.now = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_interval(self):
        breaker = self._breaker(reset_after_s=1.0)
        breaker.record_failure()
        self.now = 1.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        self.now = 1.5
        assert not breaker.allow()  # interval restarted at t=1.0
        self.now = 2.0
        assert breaker.allow()

    def test_threshold_tolerates_failures_below_it(self):
        breaker = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_success_resets_the_failure_count(self):
        breaker = self._breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=0.0)
