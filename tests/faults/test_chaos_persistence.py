"""Persistence under injected faults: torn writes, full disks,
quarantine, and the checkpoint scan's skip accounting."""

from __future__ import annotations

import json
import os

from repro import faults
from repro.core.driver import (
    CHECKPOINT_VERSION,
    CheckpointScanStats,
    CheckpointStore,
)
from repro.core.result_cache import ResultCache, execution_model_hash

KEY = {"version": 1, "config": "{}", "size": 8}
PAYLOAD = {"time_s": 1.5, "accuracy": None, "compile_events": []}


class TestResultCachePut:
    def test_transient_oserror_is_retried_and_the_entry_lands(self, tmp_path):
        faults.install("cache.put=oserror#2")  # first two attempts fail
        cache = ResultCache(str(tmp_path))
        cache.put(KEY, PAYLOAD)
        assert cache.stats.stores == 1
        assert cache.stats.write_errors == 2
        assert cache.get(KEY) == PAYLOAD

    def test_persistent_oserror_is_swallowed_but_counted(self, tmp_path):
        faults.install("cache.put=oserror")  # every attempt fails
        cache = ResultCache(str(tmp_path))
        cache.put(KEY, PAYLOAD)  # must not raise
        assert cache.stats.stores == 0
        assert cache.stats.write_errors == 3  # 2 retries + final failure
        faults.uninstall()
        assert cache.get(KEY) is None

    def test_torn_write_never_publishes_a_partial_entry(self, tmp_path):
        """The regression the fsync-before-replace discipline exists
        for: a crash mid-write leaves a partial *temp* file, never a
        partial entry under the published name."""
        faults.install("cache.put=torn#1")
        cache = ResultCache(str(tmp_path))
        cache.put(KEY, PAYLOAD)
        assert cache.stats.stores == 0
        # The crash artifact is there (unpublished), the entry is not.
        temps = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert len(temps) == 1
        entries = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
        assert entries == []
        # Every read is a clean miss — no reader can observe torn bytes.
        assert cache.get(KEY) is None
        assert cache.stats.invalid == 0
        # The next process retries the write and succeeds.
        faults.uninstall()
        cache.put(KEY, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD

    def test_corrupt_entry_is_quarantined_not_reread_forever(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(KEY, PAYLOAD)
        path = cache._path_for(KEY)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"key": half a json')
        assert cache.get(KEY) is None
        assert cache.stats.invalid == 1
        assert cache.stats.quarantined == 1
        assert not os.path.exists(path)
        quarantined = os.path.join(
            str(tmp_path), "quarantine", os.path.basename(path)
        )
        assert os.path.exists(quarantined)  # inspectable, not deleted
        # Second lookup: a clean miss, not another corruption event.
        assert cache.get(KEY) is None
        assert cache.stats.invalid == 1


class TestCheckpointSave:
    def _identity(self, seed=1, version=CHECKPOINT_VERSION, model=None):
        return {
            "version": version,
            "model": execution_model_hash() if model is None else model,
            "seed": seed,
        }

    def test_torn_save_preserves_the_previous_checkpoint(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        identity = self._identity()
        store.save(identity, {"round": 1})
        faults.install("checkpoint.save=torn#1")
        store.save(identity, {"round": 2})  # dies mid-temp-write
        faults.uninstall()
        loaded = store.load(identity)
        assert loaded is not None and loaded["round"] == 1
        # The partial temp file exists but is never scanned or loaded.
        assert any(p.endswith(".tmp") for p in os.listdir(tmp_path))
        store.save(identity, {"round": 2})
        assert store.load(identity)["round"] == 2

    def test_oserror_save_is_swallowed(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        identity = self._identity()
        faults.install("checkpoint.save=oserror#1")
        store.save(identity, {"round": 1})  # must not raise
        faults.uninstall()
        assert store.load(identity) is None
        store.save(identity, {"round": 1})
        assert store.load(identity)["round"] == 1

    def test_corrupt_checkpoint_is_quarantined_on_load(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        identity = self._identity()
        store.save(identity, {"round": 3})
        path = store.path_for(identity)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all")
        assert store.load(identity) is None
        assert not os.path.exists(path)
        assert os.path.exists(
            os.path.join(str(tmp_path), "quarantine", os.path.basename(path))
        )
        # The slot is clean again: a fresh save round-trips.
        store.save(identity, {"round": 4})
        assert store.load(identity)["round"] == 4


class TestFinishedReportsScanStats:
    """Satellite: every skip class is counted, and the scan never
    raises — a store full of garbage boots the daemon with an empty
    index and an honest tally, not a crash."""

    def _seed_store(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        model = execution_model_hash()

        def identity(seed, version=CHECKPOINT_VERSION, mod=model):
            return {"version": version, "model": mod, "seed": seed}

        # One good, complete checkpoint.
        store.save(
            identity(1), {"complete": True, "report": {"seed": 1}}
        )
        # A valid but in-progress checkpoint.
        store.save(identity(2), {"complete": False, "partial": True})
        # Complete but written by another checkpoint layout.
        store.save(
            identity(3, version=CHECKPOINT_VERSION + 1),
            {"complete": True, "report": {"seed": 3}},
        )
        # Complete but hashed against different execution-model code.
        store.save(
            identity(4, mod="0123456789abcdef"),
            {"complete": True, "report": {"seed": 4}},
        )
        # Malformed: complete, but the report is not a dict.
        store.save(
            identity(5), {"complete": True, "report": "not-a-dict"}
        )
        # Truncated JSON.
        with open(
            os.path.join(str(tmp_path), "tune_truncated.json"),
            "w",
            encoding="utf-8",
        ) as handle:
            handle.write('{"complete": true, "repo')
        # A non-dict entry.
        with open(
            os.path.join(str(tmp_path), "tune_list.json"),
            "w",
            encoding="utf-8",
        ) as handle:
            json.dump([1, 2, 3], handle)
        # Not a checkpoint filename: never even scanned.
        with open(
            os.path.join(str(tmp_path), "README.txt"), "w", encoding="utf-8"
        ) as handle:
            handle.write("not a checkpoint")
        return store

    def test_every_skip_class_is_counted_and_nothing_raises(self, tmp_path):
        store = self._seed_store(tmp_path)
        yielded = list(store.finished_reports())
        assert [report["seed"] for _identity, report in yielded] == [1]
        stats = store.last_scan
        assert stats is not None
        assert stats.scanned == 7
        assert stats.yielded == 1
        assert stats.unreadable == 1  # the truncated file
        assert stats.malformed == 2  # the list entry + the str report
        assert stats.not_complete == 1
        assert stats.wrong_version == 1
        assert stats.stale_model == 1

    def test_caller_supplied_collector_is_used_and_published(self, tmp_path):
        store = self._seed_store(tmp_path)
        mine = CheckpointScanStats()
        list(store.finished_reports(mine))
        assert store.last_scan is mine
        assert mine.yielded == 1 and mine.scanned == 7

    def test_disabled_store_scans_nothing(self):
        store = CheckpointStore(None)
        assert list(store.finished_reports()) == []
        assert store.last_scan.scanned == 0

    def test_missing_directory_is_an_empty_scan(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "never-created"))
        assert list(store.finished_reports()) == []
        assert store.last_scan.scanned == 0
