"""The derivation store: location-keyed memo files with the result
cache's durability discipline (atomic writes, quarantine on corruption,
fault-injection through its own ``graph.put`` point).
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.artifacts.store import DerivationStore

LOCATION = {"graph": 1, "node": "rule:T/c", "program": "p"}
PAYLOAD = {"digest": "ab" * 8, "kind": "rule", "key": {"version": 1}}


@pytest.fixture(autouse=True)
def no_leaked_faults():
    faults.uninstall()
    yield
    faults.uninstall()


class TestLayout:
    def test_for_cache_dir_nests_under_graph(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        assert store.enabled
        assert store.directory == os.path.join(str(tmp_path), "graph")

    def test_disabled_without_a_cache_dir(self):
        store = DerivationStore.for_cache_dir(None)
        assert not store.enabled
        store.put(LOCATION, PAYLOAD)  # silently dropped
        assert store.get(LOCATION) is None


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        assert store.get(LOCATION) is None
        store.put(LOCATION, PAYLOAD)
        assert store.get(LOCATION) == PAYLOAD
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.stores == 1

    def test_locations_do_not_cross_talk(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        store.put(LOCATION, PAYLOAD)
        other = dict(LOCATION, machine="Desktop")
        assert store.get(other) is None

    def test_replace_in_place(self, tmp_path):
        # `attach` re-records the report node at the same location; the
        # later payload must win.
        store = DerivationStore.for_cache_dir(str(tmp_path))
        store.put(LOCATION, PAYLOAD)
        richer = dict(PAYLOAD, report={"evaluations": 3})
        store.put(LOCATION, richer)
        assert store.get(LOCATION) == richer

    def test_survives_reopen(self, tmp_path):
        DerivationStore.for_cache_dir(str(tmp_path)).put(LOCATION, PAYLOAD)
        fresh = DerivationStore.for_cache_dir(str(tmp_path))
        assert fresh.get(LOCATION) == PAYLOAD


class TestQuarantine:
    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        store.put(LOCATION, PAYLOAD)
        path = store._path_for(LOCATION)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ torn")
        assert store.get(LOCATION) is None
        assert store.stats.quarantined == 1
        pen = os.path.join(str(tmp_path), "graph", "quarantine")
        assert os.listdir(pen) == [os.path.basename(path)]


class TestFaultInjection:
    def test_graph_put_point_retries_transient_oserror(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        faults.install("graph.put=oserror#2")  # first two attempts fail
        store.put(LOCATION, PAYLOAD)
        assert store.get(LOCATION) == PAYLOAD
        assert store.stats.write_errors == 2

    def test_graph_put_never_raises_when_disk_stays_broken(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        faults.install("graph.put=oserror")
        store.put(LOCATION, PAYLOAD)  # must not raise
        faults.uninstall()
        assert store.get(LOCATION) is None  # nothing torn was published

    def test_point_is_distinct_from_the_result_cache(self, tmp_path):
        # Chaos plans can break the graph store while evaluations keep
        # caching (and vice versa).
        from repro.core.result_cache import ResultCache

        faults.install("cache.put=oserror")
        store = DerivationStore.for_cache_dir(str(tmp_path))
        store.put(LOCATION, PAYLOAD)
        assert store.get(LOCATION) == PAYLOAD
        cache = ResultCache(str(tmp_path))
        cache.put({"k": 1}, {"time_s": 1.0})
        assert cache.get({"k": 1}) is None
