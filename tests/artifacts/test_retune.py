"""Incremental re-tuning: clean serves, warm starts, determinism.

The expensive fixtures run once per module: one cold tune of the
Strassen benchmark populates a template cache directory, then one
stored rule digest is perturbed — the on-disk signature of "someone
edited that rule".  Every test copies the template so warm runs never
contaminate each other, and every warm run replays most evaluations
from the template's disk cache.
"""

from __future__ import annotations

import json
import shutil
from types import SimpleNamespace

import pytest

from repro.api import Session, TunerConfig
from repro.apps.registry import benchmark, canonical_env_factory
from repro.artifacts.graph import DerivationGraph
from repro.artifacts.retune import retune_session
from repro.artifacts.store import DerivationStore
from repro.compiler.compile import compile_program
from repro.core.driver import CheckpointStore
from repro.core.report import report_to_payload
from repro.core.result_cache import ResultCache
from repro.experiments.runner import clear_sessions
from repro.hardware.machines import DESKTOP

APP = "Strassen"
SEED = 3


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def _config(cache_dir, **overrides) -> TunerConfig:
    settings = dict(
        backend="serial", workers=1, progress=False, cache_dir=str(cache_dir)
    )
    settings.update(overrides)
    return TunerConfig.from_env(**settings)


def _payload_bytes(report) -> str:
    """The report payload's canonical bytes, sans the physical-compute
    gauge — ``computed_evaluations`` legitimately varies with cache
    warmth and scheduling (the same carve-out every backend-matrix
    determinism test makes), while everything observable must match
    byte for byte."""
    payload = report_to_payload(report)
    payload.pop("computed_evaluations", None)
    return json.dumps(payload, sort_keys=True)


def _perturb_one_rule(cache_dir: str, strategy: str) -> str:
    """Flip one stored rule node's digest — the store now disagrees
    with that rule's (unchanged) source, exactly as if the rule had
    been edited before the store was written.  Returns the node name."""
    spec = benchmark(APP)
    compiled = compile_program(spec.build_program(), DESKTOP)
    graph = DerivationGraph.build(
        compiled,
        canonical_env_factory(APP),
        size=spec.tuning_size,
        seed=SEED,
        strategy=strategy,
    )
    store = DerivationStore.for_cache_dir(cache_dir)
    node = next(n for n in graph.nodes() if n.kind == "rule")
    location = graph._location(node)
    entry = store.get(location)
    assert entry is not None, "cold run left no graph record"
    entry["digest"] = "0" * 16
    store.put(location, entry)
    return node.name


@pytest.fixture(scope="module")
def template(tmp_path_factory):
    """Template cache dir: cold-tuned, then one rule digest perturbed."""
    base = tmp_path_factory.mktemp("retune-template")
    config = _config(base)
    clear_sessions()
    cold = retune_session(APP, DESKTOP, SEED, config)
    assert not cold.clean and not cold.warm_started
    rule_node = _perturb_one_rule(str(base), config.strategy)
    clear_sessions()
    return SimpleNamespace(
        path=base,
        cold_report=cold.report,
        cold_payload=_payload_bytes(cold.report),
        rule_node=rule_node,
        transform=rule_node.split(":", 1)[1].split("/", 1)[0],
    )


def _copy(template, tmp_path) -> str:
    dest = tmp_path / "cache"
    shutil.copytree(template.path, dest)
    return str(dest)


class TestColdAndClean:
    def test_cold_run_has_no_warm_provenance(self, template):
        assert template.cold_report.warm_start_from is None
        # Absent, not null: cold payloads stay byte-identical to every
        # report the engine produced before the graph existed.
        assert "warm_start_from" not in json.loads(template.cold_payload)

    def test_clean_graph_serves_without_a_single_evaluation(self, tmp_path):
        cache = tmp_path / "clean"
        config = _config(cache)
        first = retune_session(APP, DESKTOP, SEED, config)
        clear_sessions()
        seen = []
        second = retune_session(
            APP, DESKTOP, SEED, config, on_candidate=seen.append
        )
        assert second.clean and not second.warm_started
        assert second.sync.clean
        assert seen == []  # no tuner ever ran
        assert _payload_bytes(second.report) == _payload_bytes(first.report)


class TestWarmStart:
    def test_edited_rule_retunes_only_affected_sites(self, template, tmp_path):
        cache = _copy(template, tmp_path)
        result_cache = ResultCache(cache)
        warm = retune_session(
            APP, DESKTOP, SEED, _config(cache), result_cache=result_cache
        )
        assert not warm.clean and warm.warm_started
        assert warm.sync.frontier == [template.rule_node]
        assert warm.affected == [template.transform]
        provenance = warm.report.warm_start_from
        assert provenance is not None
        assert provenance["program"] == template.cold_report.best.program_name
        assert provenance["best"] == template.cold_report.best.canonical_key()
        assert provenance["frontier"] == [template.rule_node]
        assert template.rule_node in provenance["dirty"]
        # The acceptance bar: warm-started re-tuning computes
        # measurably fewer cold evaluations than the from-scratch run
        # (the rest replay from the template's disk cache).
        assert warm.report.evaluations > 0
        assert result_cache.stats.misses < template.cold_report.evaluations / 2

    def test_warm_run_heals_the_graph(self, template, tmp_path):
        cache = _copy(template, tmp_path)
        config = _config(cache)
        warm = retune_session(APP, DESKTOP, SEED, config)
        clear_sessions()
        served = retune_session(APP, DESKTOP, SEED, config)
        assert served.clean
        assert _payload_bytes(served.report) == _payload_bytes(warm.report)

    def test_warm_report_byte_identical_across_backends(
        self, template, tmp_path
    ):
        payloads = {}
        for backend, workers in (("serial", 1), ("thread", 2), ("process", 2)):
            cache = _copy(template, tmp_path / backend)
            clear_sessions()
            warm = retune_session(
                APP, DESKTOP, SEED,
                _config(cache, backend=backend, workers=workers),
            )
            assert warm.warm_started
            payloads[backend] = _payload_bytes(warm.report)
        assert payloads["serial"] == payloads["thread"] == payloads["process"]

    def test_warm_start_from_round_trips_through_the_journal(
        self, template, tmp_path
    ):
        from repro.core.report import report_from_payload

        cache = _copy(template, tmp_path)
        warm = retune_session(APP, DESKTOP, SEED, _config(cache))
        store = CheckpointStore.for_cache_dir(cache)
        replayed = [
            (identity, report_from_payload(payload))
            for identity, payload in store.finished_reports()
            if "warm_start_from" in payload
        ]
        assert replayed, "warm session left no complete checkpoint"
        identity, report = replayed[0]
        # The identity is salted so warm sessions never share
        # checkpoints with cold ones...
        assert "warm_start" in identity
        # ...and the provenance survives the round trip verbatim.
        assert report.warm_start_from == warm.report.warm_start_from
        assert _payload_bytes(report) == _payload_bytes(warm.report)


class TestSessionIntegration:
    def test_session_retune_installs_and_memoizes(self, template, tmp_path):
        cache = _copy(template, tmp_path)
        with Session(_config(cache, seed=SEED)) as session:
            tuned = session.retune(APP, "Desktop")
            assert tuned.report.warm_start_from is not None
            # The re-tuned session replaces the process-wide entry, so
            # a plain tune() serves it instead of the stale one.
            assert session.tune(APP, DESKTOP) is tuned
            again = session.retune(APP, DESKTOP)
            assert _payload_bytes(again.report) == _payload_bytes(tuned.report)

    def test_retune_config_flag_routes_tune_through_the_graph(
        self, template, tmp_path
    ):
        cache = _copy(template, tmp_path)
        with Session(_config(cache, seed=SEED, retune=True)) as session:
            tuned = session.tune(APP, DESKTOP)
        assert tuned.report.warm_start_from is not None
