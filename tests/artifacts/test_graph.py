"""Dirty propagation over the derivation graph.

Builds a two-phase pipeline program twice — once pristine, once with a
single rule body edited — and asserts the *minimal invalidated
frontier*: exactly the edited rule is the root cause, exactly its
dependents recompute, and every sibling derivation stays memoized.
"""

from __future__ import annotations

from repro.artifacts.graph import DerivationGraph
from repro.artifacts.store import DerivationStore
from repro.compiler.compile import compile_program
from repro.hardware.machines import DESKTOP, LAPTOP
from repro.lang import Choice, CostSpec, Rule, Step, Transform, make_program

SIZE = 256


def pipeline_program(double_factor: float = 2.0):
    """Two chained transforms under a composite top: Mid = factor*In,
    Out = Mid + 1.  ``double_factor`` is the "edited rule" knob — it
    lands in the Double rule's body bytecode and nowhere else."""

    def double(ctx):
        src, out = ctx.input("In"), ctx.array("Out")
        r0, r1 = ctx.rows
        out[r0:r1] = double_factor * src[r0:r1]

    def add_one(ctx):
        src, out = ctx.input("In"), ctx.array("Out")
        r0, r1 = ctx.rows
        out[r0:r1] = src[r0:r1] + 1.0

    phase1 = Transform(
        name="Double", inputs=("In",), outputs=("Out",),
        choices=(Choice(name="d", rule=Rule(
            name="double", reads=("In",), writes=("Out",), body=double,
            cost=CostSpec(flops_per_item=1.0))),),
    )
    phase2 = Transform(
        name="AddOne", inputs=("In",), outputs=("Out",),
        choices=(Choice(name="a", rule=Rule(
            name="add_one", reads=("In",), writes=("Out",), body=add_one,
            cost=CostSpec(flops_per_item=1.0))),),
    )
    top = Transform(
        name="Pipeline", inputs=("In",), outputs=("Out",),
        choices=(
            Choice(
                name="chain",
                steps=(
                    Step(transform="Double", bindings={"Out": "Mid"}),
                    Step(transform="AddOne", bindings={"In": "Mid"}),
                ),
                intermediates={"Mid": lambda shapes, p: shapes["In"]},
            ),
        ),
    )
    return make_program("pipeline", [top, phase1, phase2], "Pipeline")


def build_graph(factor: float = 2.0, machine=DESKTOP) -> DerivationGraph:
    compiled = compile_program(pipeline_program(factor), machine)
    return DerivationGraph.build(compiled, None, size=SIZE, seed=7)


class TestTopology:
    def test_node_set_and_wiring(self):
        graph = build_graph()
        names = set(graph.order)
        assert names == {
            "rule:Double/d", "transform:Double",
            "rule:AddOne/a", "transform:AddOne",
            "transform:Pipeline",
            "compiled", "plans", "input-master", "outcomes", "report",
        }
        assert graph.node("transform:Double").inputs == ("rule:Double/d",)
        assert graph.node("transform:Pipeline").inputs == ()
        assert set(graph.node("compiled").inputs) == {
            "transform:Double", "transform:AddOne", "transform:Pipeline",
        }
        assert graph.node("plans").inputs == ("compiled",)
        assert graph.node("outcomes").inputs == ("plans", "input-master")
        assert graph.node("report").inputs == ("outcomes",)

    def test_topological_order(self):
        graph = build_graph()
        position = {name: i for i, name in enumerate(graph.order)}
        for node in graph.nodes():
            assert all(
                position[parent] < position[node.name]
                for parent in node.inputs
            )

    def test_digests_are_deterministic(self):
        a, b = build_graph(), build_graph()
        for name in a.order:
            assert a.node(name).digest == b.node(name).digest


class TestSyncAndRecord:
    def test_empty_store_is_all_miss_with_sourceless_frontier(self, tmp_path):
        graph = build_graph()
        sync = graph.sync(DerivationStore.for_cache_dir(str(tmp_path)))
        assert sync.misses == 10 and sync.hits == 0 and sync.stale == 0
        assert not sync.clean
        assert len(sync.dirty) == 10
        # The frontier on a cold store is every node without inputs.
        assert set(sync.frontier) == {
            "rule:Double/d", "rule:AddOne/a", "transform:Pipeline",
            "input-master",
        }

    def test_record_then_resync_is_all_clean(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        graph = build_graph()
        graph.sync(store)
        assert graph.record(store) == 10
        fresh = build_graph()
        sync = fresh.sync(store)
        assert sync.clean
        assert sync.hits == 10 and sync.misses == 0 and sync.stale == 0
        assert fresh.dirty_transforms() == []

    def test_one_edited_rule_dirties_exactly_its_dependents(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        pristine = build_graph(factor=2.0)
        pristine.sync(store)
        pristine.record(store)

        edited = build_graph(factor=3.0)
        sync = edited.sync(store)
        assert sync.frontier == ["rule:Double/d"]
        assert set(sync.dirty) == {
            "rule:Double/d", "transform:Double",
            "compiled", "plans", "outcomes", "report",
        }
        # The stale root plus five digest-chained dependents.
        assert sync.stale == 6 and sync.misses == 0 and sync.hits == 4
        # Untouched derivations stay memoized.
        for name in ("rule:AddOne/a", "transform:AddOne",
                     "transform:Pipeline", "input-master"):
            assert edited.node(name).clean is True
        assert edited.dirty_transforms() == ["Double"]

    def test_stale_payload_stays_readable(self, tmp_path):
        # A dirty report node must still surface its stored payload —
        # that is the warm-start donor.
        store = DerivationStore.for_cache_dir(str(tmp_path))
        pristine = build_graph(factor=2.0)
        pristine.sync(store)
        pristine.record(store)
        pristine.attach(store, "report", {"report": {"evaluations": 5}})

        edited = build_graph(factor=3.0)
        edited.sync(store)
        report_node = edited.node("report")
        assert report_node.clean is False
        assert report_node.stored is not None
        assert report_node.stored["report"] == {"evaluations": 5}

    def test_recording_the_edit_heals_the_graph(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        pristine = build_graph(factor=2.0)
        pristine.sync(store)
        pristine.record(store)
        edited = build_graph(factor=3.0)
        edited.sync(store)
        assert edited.record(store) == 6  # only the dirty nodes rewrite
        again = build_graph(factor=3.0)
        assert again.sync(store).clean

    def test_lost_downstream_record_recomputes_without_a_stale_root(
        self, tmp_path
    ):
        # Explicit propagation covers a quarantined/lost record too:
        # the lost node itself is the frontier, everything below it
        # recomputes, nothing above it does.
        store = DerivationStore.for_cache_dir(str(tmp_path))
        graph = build_graph()
        graph.sync(store)
        graph.record(store)
        import os
        os.remove(store._path_for(graph._location(graph.node("plans"))))
        fresh = build_graph()
        sync = fresh.sync(store)
        assert sync.frontier == ["plans"]
        assert set(sync.dirty) == {"plans", "outcomes", "report"}
        assert sync.misses == 1 and sync.stale == 2


class TestLocationPartitioning:
    def test_machines_share_structure_nodes_only(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        desktop = build_graph(machine=DESKTOP)
        desktop.sync(store)
        desktop.record(store)

        laptop = build_graph(machine=LAPTOP)
        sync = laptop.sync(store)
        # Rules, transforms and the input master are machine-agnostic;
        # compiled/plans/outcomes/report live at per-machine locations.
        assert sync.hits == 6
        assert sync.misses == 4
        assert sync.frontier == ["compiled"]

    def test_seeds_get_their_own_session_nodes(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        compiled = compile_program(pipeline_program(), DESKTOP)
        first = DerivationGraph.build(compiled, None, size=SIZE, seed=7)
        first.sync(store)
        first.record(store)
        other = DerivationGraph.build(compiled, None, size=SIZE, seed=8)
        sync = other.sync(store)
        # input-master/outcomes/report are seed-scoped; everything
        # structural plus compiled/plans is shared.
        assert sync.hits == 7 and sync.misses == 3


class TestRender:
    def test_render_marks_status_and_provenance(self, tmp_path):
        store = DerivationStore.for_cache_dir(str(tmp_path))
        pristine = build_graph(factor=2.0)
        pristine.sync(store)
        pristine.record(store)
        edited = build_graph(factor=3.0)
        listing = edited.render()
        assert "[?    ]" in listing  # before sync
        edited.sync(store)
        listing = edited.render()
        assert "pipeline @ Desktop" in listing
        assert "[DIRTY] rule         rule:Double/d" in listing
        assert "[clean]" in listing
        assert "<- outcomes" in listing
