"""Fingerprint sensitivity and stability for the derivation graph.

The whole point of the fine-grained keys is surgical invalidation:
editing one rule must change exactly that rule's fingerprint, the
structural hashes must *exclude* rule bodies (so a body edit reaches
the transform only through explicit digest chaining), and every key
must be stable across repeated computation in one process.
"""

from __future__ import annotations

import re

from repro.artifacts.keys import (
    KEY_VERSION,
    choice_fingerprint,
    digest_of,
    engine_key,
    machine_key,
    rule_fingerprint,
    transform_fingerprint,
)
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER
from repro.lang import Choice, CostSpec, Pattern, Rule, Transform

HEX16 = re.compile(r"^[0-9a-f]{16}$")


def _rule(factor: float = 2.0, flops: float = 1.0, name: str = "scale") -> Rule:
    def body(ctx):
        src = ctx.input("In")
        out = ctx.array("Out")
        r0, r1 = ctx.rows
        out[r0:r1] = factor * src[r0:r1]

    return Rule(
        name=name,
        reads=("In",),
        writes=("Out",),
        body=body,
        pattern=Pattern.DATA_PARALLEL,
        cost=CostSpec(flops_per_item=flops),
    )


def _transform(rule: Rule, name: str = "Scale") -> Transform:
    return Transform(
        name=name,
        inputs=("In",),
        outputs=("Out",),
        choices=(Choice(name=rule.name, rule=rule),),
    )


class TestRuleFingerprint:
    def test_identical_rules_share_a_fingerprint(self):
        # Two separately constructed but behaviourally identical rules
        # must memoize to the same graph node across sessions.
        assert rule_fingerprint(_rule()) == rule_fingerprint(_rule())

    def test_stable_across_calls(self):
        rule = _rule()
        first = rule_fingerprint(rule)
        assert first == rule_fingerprint(rule)
        assert HEX16.match(first)

    def test_body_constant_changes_the_fingerprint(self):
        # `factor` lands in the closure consts, i.e. the body bytecode
        # token — exactly the kind of one-line edit a re-tune is for.
        assert rule_fingerprint(_rule(factor=2.0)) != rule_fingerprint(
            _rule(factor=3.0)
        )

    def test_cost_model_changes_the_fingerprint(self):
        assert rule_fingerprint(_rule(flops=1.0)) != rule_fingerprint(
            _rule(flops=50.0)
        )

    def test_metadata_changes_the_fingerprint(self):
        assert rule_fingerprint(_rule(name="scale")) != rule_fingerprint(
            _rule(name="scale2")
        )


class TestStructuralFingerprints:
    def test_transform_hash_excludes_rule_bodies(self):
        # Same structure, different rule body: the transform's own
        # structural hash must NOT move — the graph layer composes the
        # rule digests explicitly, and smearing bodies into the shell
        # would hide which choice site actually changed.
        a = _transform(_rule(factor=2.0))
        b = _transform(_rule(factor=9.0))
        assert transform_fingerprint(a) == transform_fingerprint(b)
        assert choice_fingerprint(a.choices[0]) == choice_fingerprint(
            b.choices[0]
        )

    def test_transform_hash_sees_structure(self):
        base = _transform(_rule())
        renamed = _transform(_rule(), name="Other")
        assert transform_fingerprint(base) != transform_fingerprint(renamed)

    def test_choice_hash_sees_the_choice_name(self):
        rule = _rule()
        assert choice_fingerprint(
            Choice(name="a", rule=rule)
        ) != choice_fingerprint(Choice(name="b", rule=rule))


class TestMachineAndEngineKeys:
    def test_machines_key_apart(self):
        keys = {machine_key(m) for m in (DESKTOP, LAPTOP, SERVER)}
        assert len(keys) == 3

    def test_machine_key_stable(self):
        assert machine_key(DESKTOP) == machine_key(DESKTOP)

    def test_engine_key_is_memoized_and_well_formed(self):
        first = engine_key()
        assert HEX16.match(first)
        assert engine_key() == first


class TestDigestOf:
    def test_insertion_order_is_irrelevant(self):
        assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})

    def test_any_field_matters(self):
        base = {"version": KEY_VERSION, "rule": "abc"}
        assert digest_of(base) != digest_of(dict(base, rule="abd"))
        assert digest_of(base) != digest_of(
            dict(base, version=KEY_VERSION + 1)
        )
