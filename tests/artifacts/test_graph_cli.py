"""The ``graph`` CLI subcommand: render, sync counters, recording.

Runs the entry point in-process (the CLI returns exit codes instead of
calling ``sys.exit``), with the cache environment pointed at a private
directory so clean/dirty status is fully under the test's control.
"""

from __future__ import annotations

import pytest

from repro.core.result_cache import CACHE_DIR_ENV
from repro.experiments.__main__ import main

APP = "Strassen"
MACHINE = "Desktop"


@pytest.fixture
def private_cache(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


class TestGraphSubcommand:
    def test_cold_store_renders_all_dirty(self, private_cache, capsys):
        assert main(["graph", APP, MACHINE]) == 0
        out = capsys.readouterr().out
        assert f"derivation graph: {APP} @ {MACHINE}" in out
        assert "[DIRTY]" in out
        assert "[clean]" not in out
        assert "sync: hits=0" in out
        assert "frontier=" in out

    def test_record_then_rerun_is_all_clean(self, private_cache, capsys):
        assert main(["graph", APP, MACHINE, "--record"]) == 0
        out = capsys.readouterr().out
        assert "recorded:" in out
        assert main(["graph", APP, MACHINE]) == 0
        out = capsys.readouterr().out
        assert "[DIRTY]" not in out
        assert "misses=0 stale=0 dirty=0 frontier=0" in out

    def test_disabled_store_says_so(self, monkeypatch, capsys):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.delenv("REPRO_TUNER_CACHE_DIR", raising=False)
        assert main(["graph", APP, MACHINE]) == 0
        assert "store: disabled" in capsys.readouterr().out

    def test_usage_and_unknown_targets(self, private_cache, capsys):
        assert main(["graph", APP]) == 2
        assert "usage:" in capsys.readouterr().out
        assert main(["graph", "NoSuchApp", MACHINE]) == 2
        assert main(["graph", APP, "NoSuchMachine"]) == 2
        assert main(["graph", APP, MACHINE, "--size=abc"]) == 2

    def test_size_and_seed_flags_rekey_session_nodes(
        self, private_cache, capsys
    ):
        assert main(["graph", APP, MACHINE, "--record"]) == 0
        capsys.readouterr()
        assert main(["graph", APP, MACHINE, "--seed=99"]) == 0
        out = capsys.readouterr().out
        # Structure and compile nodes stay memoized; the seed-scoped
        # session nodes (input-master/outcomes/report) miss.
        assert "misses=3" in out


class TestRetuneFlag:
    def test_retune_flag_lands_in_config_provenance(self, capsys):
        assert main(["config", "--retune"]) == 0
        out = capsys.readouterr().out
        retune_line = next(
            line for line in out.splitlines()
            if line.strip().startswith("retune")
        )
        assert "True" in retune_line
        assert "command-line flag" in retune_line
