"""Property-based tests for selectors (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selector import Selector


@st.composite
def selectors(draw, max_algorithms=8):
    cutoffs = draw(
        st.lists(st.integers(min_value=1, max_value=10**7), unique=True,
                 max_size=11).map(sorted).map(tuple)
    )
    algorithms = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_algorithms - 1),
            min_size=len(cutoffs) + 1,
            max_size=len(cutoffs) + 1,
        ).map(tuple)
    )
    return Selector(cutoffs=cutoffs, algorithms=algorithms)


@given(selectors(), st.integers(min_value=0, max_value=10**9))
def test_select_returns_declared_algorithm(selector, size):
    assert selector.select(size) in selector.algorithms


@given(selectors(), st.integers(min_value=0, max_value=10**9))
def test_select_respects_ranges(selector, size):
    """SELECT must return the algorithm of the unique containing range."""
    result = selector.select(size)
    bounds = (0,) + selector.cutoffs + (None,)
    for level in range(selector.levels):
        low = bounds[level]
        high = bounds[level + 1]
        if size >= low and (high is None or size < high):
            assert result == selector.algorithms[level]
            return
    raise AssertionError("size fell through every range")


@given(selectors())
def test_json_round_trip(selector):
    assert Selector.from_json(selector.to_json()) == selector


@given(
    selectors(),
    st.integers(min_value=1, max_value=10**7),
    st.integers(min_value=0, max_value=7),
)
def test_add_level_preserves_other_ranges(selector, cutoff, algorithm):
    if cutoff in selector.cutoffs:
        return
    grown = selector.with_level_added(cutoff, algorithm)
    assert grown.levels == selector.levels + 1
    # Points away from the new cutoff's range keep their algorithm.
    for probe in list(selector.cutoffs) + [10**9]:
        if probe >= cutoff:
            assert grown.select(probe) == selector.select(probe)


@given(selectors(), st.data())
def test_remove_level_shrinks(selector, data):
    if not selector.cutoffs:
        return
    level = data.draw(st.integers(0, len(selector.cutoffs) - 1))
    shrunk = selector.with_level_removed(level)
    assert shrunk.levels == selector.levels - 1


@given(selectors(), st.data())
def test_scale_cutoff_keeps_strictly_increasing(selector, data):
    if not selector.cutoffs:
        return
    level = data.draw(st.integers(0, len(selector.cutoffs) - 1))
    target = data.draw(st.integers(1, 10**8))
    moved = selector.with_cutoff_scaled(level, target)
    assert all(b > a for a, b in zip(moved.cutoffs, moved.cutoffs[1:]))
