"""Property-based tests: row chunking and deque discipline."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.deque import WorkDeque
from repro.runtime.invocation import _row_chunks
from repro.runtime.task import Task, TaskState


@given(st.integers(min_value=1, max_value=10**6),
       st.integers(min_value=1, max_value=512))
def test_row_chunks_partition_exactly(height, count):
    chunks = _row_chunks(height, count)
    # Non-empty, contiguous, covering, disjoint.
    assert chunks[0][0] == 0
    assert chunks[-1][1] == height
    for (a0, a1), (b0, b1) in zip(chunks, chunks[1:]):
        assert a1 == b0
        assert a0 < a1
    assert all(r0 < r1 for r0, r1 in chunks)
    assert len(chunks) <= min(count, height)


@given(st.integers(min_value=1, max_value=10**6),
       st.integers(min_value=1, max_value=512))
def test_row_chunks_balanced(height, count):
    chunks = _row_chunks(height, count)
    sizes = [r1 - r0 for r0, r1 in chunks]
    assert max(sizes) - min(sizes) <= 1


@given(st.lists(st.sampled_from(["push", "pop", "steal"]), max_size=200),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=60)
def test_deque_is_a_consistent_sequence(ops, seed):
    """Under any interleaving of owner pushes/pops and thief steals,
    every task is returned exactly once and the owner sees LIFO order
    among the tasks it gets back."""
    deque = WorkDeque(0)
    rng = random.Random(seed)
    pushed = []
    returned = []
    counter = 0
    for op in ops:
        if op == "push":
            task = Task(f"t{counter}")
            counter += 1
            task.finish_dependency_creation()
            deque.push_top(task)
            pushed.append(task)
        elif op == "pop":
            task = deque.pop_top()
            if task is not None:
                returned.append(task)
        else:
            task = deque.steal_bottom()
            if task is not None:
                returned.append(task)
    # Drain.
    while True:
        task = deque.pop_top()
        if task is None:
            break
        returned.append(task)
    assert len(returned) == len(pushed)
    assert {t.task_id for t in returned} == {t.task_id for t in pushed}
