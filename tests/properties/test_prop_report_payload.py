"""Property tests: the TuningReport payload round-trip is exact.

Resumed sessions and process shards rebuild reports from primitive
payloads; a lossy round-trip would silently change provenance (or
results) on resume.  Hypothesis drives the full field space — including
the strategy/seed metadata, negative/subnormal floats and infinities —
and asserts equality field by field.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.report import TuningReport, report_from_payload, report_to_payload
from repro.core.selector import Selector

_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    min_size=1,
    max_size=12,
)

_floats = st.floats(allow_nan=False, width=64)

_selectors = st.builds(
    Selector.constant, st.integers(min_value=0, max_value=7)
)

_configurations = st.builds(
    Configuration,
    program_name=_names,
    selectors=st.dictionaries(_names, _selectors, max_size=3),
    tunables=st.dictionaries(
        _names, st.integers(min_value=-(2**31), max_value=2**31), max_size=4
    ),
    label=st.text(max_size=16),
)

_reports = st.builds(
    TuningReport,
    best=_configurations,
    best_time_s=_floats,
    tuning_time_s=_floats,
    evaluations=st.integers(min_value=0, max_value=2**40),
    sizes=st.lists(st.integers(min_value=1, max_value=2**40), max_size=8),
    history=st.lists(_floats, max_size=8),
    computed_evaluations=st.integers(min_value=0, max_value=2**40),
    strategy=st.sampled_from(["evolutionary", "hillclimb", "random", "bandit"]),
    seed=st.integers(min_value=-(2**31), max_value=2**31),
)


@settings(max_examples=150, deadline=None)
@given(report=_reports)
def test_report_payload_round_trip_is_exact(report):
    restored = report_from_payload(report_to_payload(report))
    assert restored.best.to_json() == report.best.to_json()
    assert restored.best_time_s == report.best_time_s
    assert restored.tuning_time_s == report.tuning_time_s
    assert restored.evaluations == report.evaluations
    assert restored.sizes == report.sizes
    assert restored.history == report.history
    assert restored.computed_evaluations == report.computed_evaluations
    assert restored.strategy == report.strategy
    assert restored.seed == report.seed


@settings(max_examples=50, deadline=None)
@given(report=_reports)
def test_report_payload_survives_json_transport(report):
    """Payloads cross process pipes and checkpoint files as JSON; a
    dumps/loads cycle must not perturb any field (floats serialise as
    shortest round-trip reprs)."""
    import json

    payload = json.loads(json.dumps(report_to_payload(report)))
    restored = report_from_payload(payload)
    assert restored.best_time_s == report.best_time_s
    assert restored.history == report.history
    assert restored.strategy == report.strategy
    assert restored.seed == report.seed


def test_legacy_payload_without_provenance_restores_defaults():
    """Payloads written before reports carried strategy/seed metadata
    must restore with the historical defaults instead of crashing."""
    report = TuningReport(
        best=Configuration(program_name="p"),
        best_time_s=1.0,
        tuning_time_s=2.0,
        evaluations=3,
        sizes=[64],
        history=[1.0],
    )
    payload = report_to_payload(report)
    del payload["strategy"]
    del payload["seed"]
    restored = report_from_payload(payload)
    assert restored.strategy == "evolutionary"
    assert restored.seed == 0
