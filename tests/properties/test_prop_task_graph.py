"""Property-based tests of the task model: random DAGs always drain
with every completion released exactly once."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.task import Task, TaskState


@given(
    st.integers(min_value=1, max_value=40),
    st.floats(min_value=0.0, max_value=0.8),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60)
def test_random_dag_drains(n_tasks, edge_density, seed):
    """Build a random DAG (edges only point backwards, so acyclic),
    complete tasks in a valid order, and check every task completes
    exactly once with no dangling dependents."""
    rng = random.Random(seed)
    tasks = [Task(f"t{i}") for i in range(n_tasks)]
    for i, task in enumerate(tasks):
        for j in range(i):
            if rng.random() < edge_density:
                task.depend_on(tasks[j])

    ready = [t for t in tasks if t.finish_dependency_creation()]
    completed = []
    while ready:
        task = ready.pop(rng.randrange(len(ready)))
        released = task.complete()
        completed.append(task)
        ready.extend(released)

    assert len(completed) == n_tasks
    for task in tasks:
        assert task.state is TaskState.COMPLETE
        assert task.dependents == []
        assert task.dependency_count == 0


@given(
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_continuation_chains_resolve(depth, seed):
    """However deep a continuation chain grows, dependents land on the
    live end and are released exactly once."""
    head = Task("head")
    head.finish_dependency_creation()

    current = head
    for i in range(depth):
        nxt = Task(f"cont{i}")
        current.continue_with(nxt)
        nxt.finish_dependency_creation()
        current = nxt

    waiter = Task("waiter")
    assert waiter.depend_on(head)  # follows the chain
    waiter.finish_dependency_creation()
    assert waiter.state is TaskState.NON_RUNNABLE

    released = current.complete()
    assert released == [waiter]
    assert head.resolve_continuations() is current
