"""Property-based tests: cost-model sanity and configuration
serialisation over randomly generated configurations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.selector import Selector
from repro.hardware.costmodel import KernelLaunch, cpu_task_time, kernel_time
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER


launches = st.builds(
    KernelLaunch,
    work_items=st.integers(min_value=0, max_value=10**8),
    flops_per_item=st.floats(min_value=0, max_value=1e4),
    bytes_read_per_item=st.floats(min_value=0, max_value=1e5),
    bytes_written_per_item=st.floats(min_value=0, max_value=1e4),
    bounding_box=st.integers(min_value=1, max_value=1024),
    local_work_size=st.integers(min_value=1, max_value=2048),
    use_local_memory=st.booleans(),
    sequential=st.booleans(),
    strided_access=st.booleans(),
)


@given(launches)
@settings(max_examples=200)
def test_kernel_time_positive_and_finite(launch):
    for machine in (DESKTOP, SERVER, LAPTOP):
        time = kernel_time(launch, machine.opencl_device)
        assert time >= machine.opencl_device.launch_overhead_s
        assert time < float("inf")


@given(launches, st.integers(min_value=1, max_value=10))
def test_kernel_time_monotone_in_work(launch, factor):
    device = DESKTOP.opencl_device
    bigger = KernelLaunch(
        work_items=launch.work_items * factor,
        flops_per_item=launch.flops_per_item,
        bytes_read_per_item=launch.bytes_read_per_item,
        bytes_written_per_item=launch.bytes_written_per_item,
        bounding_box=launch.bounding_box,
        local_work_size=launch.local_work_size,
        use_local_memory=launch.use_local_memory,
        sequential=launch.sequential,
        strided_access=launch.strided_access,
    )
    assert kernel_time(bigger, device) >= kernel_time(launch, device)


@given(
    st.floats(min_value=0, max_value=1e12),
    st.floats(min_value=0, max_value=1e12),
    st.integers(min_value=1, max_value=32),
    st.booleans(),
)
def test_cpu_task_time_non_negative(flops, mem_bytes, active, sequential):
    for machine in (DESKTOP, SERVER, LAPTOP):
        time = cpu_task_time(flops, mem_bytes, machine.cpu, active, sequential)
        assert time >= 0
        assert time < float("inf")


@st.composite
def configurations(draw):
    selectors = {}
    for name in draw(st.lists(st.sampled_from(["A", "B", "C"]), unique=True)):
        cutoffs = tuple(
            sorted(draw(st.lists(st.integers(1, 10**6), unique=True, max_size=4)))
        )
        algorithms = tuple(
            draw(st.lists(st.integers(0, 5), min_size=len(cutoffs) + 1,
                          max_size=len(cutoffs) + 1))
        )
        selectors[name] = Selector(cutoffs=cutoffs, algorithms=algorithms)
    tunables = draw(
        st.dictionaries(
            st.sampled_from(["t1", "t2", "lws_A"]), st.integers(0, 10**6)
        )
    )
    return Configuration(
        program_name="prop", selectors=selectors, tunables=tunables,
        label=draw(st.text(max_size=10)),
    )


@given(configurations())
@settings(max_examples=100)
def test_configuration_json_round_trip(config):
    restored = Configuration.from_json(config.to_json())
    assert restored.program_name == config.program_name
    assert restored.selectors == config.selectors
    assert restored.tunables == config.tunables
    assert restored.label == config.label
