"""Property-based tests: memory-manager consistency and the sort
benchmark's merge helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.sort import _merge_path, merge_runs
from repro.hardware.transfer import TransferModel
from repro.runtime.memory_manager import GpuMemoryManager


sorted_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=64),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
).map(np.sort)


@given(sorted_arrays, sorted_arrays)
def test_merge_runs_is_a_sorted_permutation(a, b):
    merged = merge_runs(a, b)
    assert len(merged) == len(a) + len(b)
    np.testing.assert_array_equal(np.sort(merged), merged)
    np.testing.assert_array_equal(
        np.sort(merged), np.sort(np.concatenate([a, b]))
    )


@given(sorted_arrays, sorted_arrays, st.data())
def test_merge_path_partitions_consistently(a, b, data):
    k = data.draw(st.integers(min_value=0, max_value=len(a) + len(b)))
    ia = _merge_path(a, b, k)
    ib = k - ia
    assert 0 <= ia <= len(a)
    assert 0 <= ib <= len(b)
    # Everything taken must not exceed anything left behind.
    if ia > 0 and ib < len(b):
        assert a[ia - 1] <= b[ib] or np.isclose(a[ia - 1], b[ib])
    if ib > 0 and ia < len(a):
        assert b[ib - 1] <= a[ia] or np.isclose(b[ib - 1], a[ia])


@given(sorted_arrays, sorted_arrays, st.integers(min_value=1, max_value=5))
def test_chunked_merge_equals_full_merge(a, b, chunks):
    """Merging chunk-by-chunk along merge paths reproduces the full
    merge (this is what the ParallelMerge rule does per work chunk)."""
    total = len(a) + len(b)
    out = np.empty(total)
    edges = [round(i * total / chunks) for i in range(chunks + 1)]
    for lo, hi in zip(edges, edges[1:]):
        ia0, ia1 = _merge_path(a, b, lo), _merge_path(a, b, hi)
        out[lo:hi] = merge_runs(a[ia0:ia1], b[lo - ia0 : hi - ia1])
    np.testing.assert_array_equal(out, merge_runs(a, b))


host_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 16), st.integers(1, 8)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


@given(host_arrays, st.data())
@settings(max_examples=50)
def test_memory_manager_roundtrip_preserves_data(host, data):
    """Any sequence of copy-in / device-write / copy-out operations
    leaves host equal to the logical latest values."""
    manager = GpuMemoryManager(TransferModel(latency_s=1e-6, bandwidth_gbs=10))
    manager.copy_in(host)
    buffer = manager.lookup(host)
    np.testing.assert_array_equal(buffer.device, host)

    rows = host.shape[0]
    r0 = data.draw(st.integers(0, rows - 1))
    r1 = data.draw(st.integers(r0 + 1, rows))
    buffer.device[r0:r1] += 1.0
    manager.record_device_write(host, (r0, r1))

    expected = host.copy()
    expected[r0:r1] += 1.0
    manager.ensure_host(host)
    np.testing.assert_array_equal(host, expected)
    # Idempotent once synced.
    assert manager.ensure_host(host) == 0.0


@given(host_arrays)
@settings(max_examples=30)
def test_dedup_never_loses_host_updates(host):
    """Invalidate-then-copy-in must always re-upload fresh host data."""
    manager = GpuMemoryManager(TransferModel(latency_s=1e-6, bandwidth_gbs=10))
    manager.copy_in(host)
    host += 5.0
    manager.invalidate_device(host)
    manager.copy_in(host)
    np.testing.assert_array_equal(manager.lookup(host).device, host)
