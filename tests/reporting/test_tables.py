"""Unit tests for the ASCII table/series renderers."""

from repro.reporting.tables import render_series, render_table


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(
            ["name", "value"],
            [["a", 1], ["long-name", 22]],
        )
        lines = text.splitlines()
        assert len({line.index("  ") >= 0 for line in lines}) == 1
        # Separator row matches header width.
        assert set(lines[1].replace("  ", "")) == {"-"}

    def test_title_line(self):
        text = render_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456], [1234567.0], [0.0000001]])
        assert "0.123" in text
        assert "1.23e+06" in text
        assert "1e-07" in text

    def test_zero_and_ints(self):
        text = render_table(["v"], [[0.0], [42]])
        assert "0" in text
        assert "42" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_ragged_rows_tolerated(self):
        text = render_table(["a", "b", "c"], [["x"]])
        assert "x" in text


class TestRenderSeries:
    def test_x_column_first(self):
        text = render_series("width", [3, 5], {"cpu": [1.0, 2.0], "gpu": [0.5, 0.7]})
        header = text.splitlines()[0]
        assert header.startswith("width")
        assert "cpu" in header and "gpu" in header

    def test_values_in_rows(self):
        text = render_series("x", [1], {"y": [9.5]})
        assert "9.5" in text.splitlines()[-1]
