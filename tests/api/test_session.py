"""The Session facade: blocking/async tuning, job handles, streaming.

Everything here runs against tiny registry benchmarks with the shared
conftest disk cache, so cache-miss sessions stay cheap and repeated
runs replay from disk.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import JobStatus, Session, TunerConfig
from repro.core.driver import CandidateEvent, RoundEvent
from repro.errors import TuningError
from repro.experiments.runner import clear_sessions
from repro.hardware.machines import DESKTOP

#: A cheap benchmark for single-session tests.
APP = "Strassen"


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def _session(**overrides) -> Session:
    """A Session on the test environment's config (conftest cache dir)
    with serial, silent defaults unless overridden."""
    return Session(
        TunerConfig.from_env(backend="serial", progress=False, **overrides)
    )


class TestBlockingTune:
    def test_tune_returns_cached_singleton(self):
        with _session() as session:
            first = session.tune(APP, DESKTOP)
            second = session.tune(APP, "Desktop")
        assert first is second
        assert first.report.best.label == "Desktop Config"

    def test_seed_defaults_to_config_seed(self):
        with _session() as session:
            tuned = session.tune(APP, DESKTOP)
            assert tuned.report.seed == session.config.seed

    def test_sessions_share_the_process_cache(self):
        with _session() as one, _session() as two:
            assert one.tune(APP, DESKTOP) is two.tune(APP, DESKTOP)

    def test_session_owns_the_cache_handle_it_tunes_through(self, tmp_path):
        """The session's result_cache property is the live handle: a
        cache-miss tuning run moves its counters."""
        with Session(
            TunerConfig.from_env(
                backend="serial", progress=False, cache_dir=str(tmp_path)
            )
        ) as session:
            assert session.result_cache.enabled
            session.tune(APP, DESKTOP)
            stats = session.result_cache.stats
            assert stats.misses + stats.hits > 0
            assert stats.stores > 0  # fresh directory: entries written


class TestSubmit:
    def test_job_completes_with_result_and_report(self):
        with _session() as session:
            job = session.submit(APP, DESKTOP)
            tuned = job.result(timeout=120)
            assert job.status() is JobStatus.DONE
            assert job.done()
            assert job.report(timeout=1) is tuned.report
            assert (job.app, job.machine) == (APP, "Desktop")
            assert session.jobs == [job]

    def test_submit_matches_blocking_tune(self):
        with _session() as session:
            via_job = session.submit(APP, DESKTOP).result(timeout=120)
            blocking = session.tune(APP, DESKTOP)
        assert via_job is blocking

    def test_streaming_callbacks_fire_in_order(self):
        candidates = []
        rounds = []
        with _session() as session:
            job = session.submit(
                APP,
                DESKTOP,
                on_candidate=candidates.append,
                on_round=rounds.append,
            )
            report = job.report(timeout=120)
        assert [type(e) for e in candidates] == [CandidateEvent] * len(candidates)
        assert [type(e) for e in rounds] == [RoundEvent] * len(rounds)
        assert [e.committed for e in candidates] == list(
            range(1, len(candidates) + 1)
        )
        # Every *committed proposal* streams one event; re-proposals of
        # an already-committed (config, size) stream again while the
        # report's logical evaluation counter does not re-count them.
        assert len(candidates) >= report.evaluations
        assert [e.index for e in rounds] == list(range(len(rounds)))
        assert len(rounds) == len(report.history)
        assert rounds[-1].best_time_s == report.history[-1]
        assert all(e.strategy == report.strategy for e in rounds)

    def test_cached_sessions_stream_nothing(self):
        events = []
        with _session() as session:
            session.tune(APP, DESKTOP)
            job = session.submit(APP, DESKTOP, on_candidate=events.append)
            job.result(timeout=120)
        assert events == []

    def test_queued_job_can_be_cancelled(self):
        release = threading.Event()
        first_commit = threading.Event()
        blocked = {"done": False}

        def block_once(event):
            if not blocked["done"]:
                blocked["done"] = True
                first_commit.set()
                release.wait(timeout=60)

        with _session(tune_many_workers=1) as session:
            running = session.submit(APP, DESKTOP, on_candidate=block_once)
            assert first_commit.wait(timeout=120)
            queued = session.submit("Sort", DESKTOP)
            assert queued.status() is JobStatus.PENDING
            assert queued.cancel()
            assert queued.status() is JobStatus.CANCELLED
            release.set()
            assert running.result(timeout=120) is not None
            assert not running.cancel()  # finished jobs cannot cancel

    def test_submit_after_close_raises(self):
        session = _session()
        session.close()
        with pytest.raises(TuningError, match="closed"):
            session.submit(APP, DESKTOP)


class TestBatch:
    PAIRS = [("Strassen", "Desktop"), ("Sort", "Desktop")]

    def test_run_batch_matches_individual_tunes(self):
        with _session() as session:
            batch = session.run_batch(self.PAIRS)
            for (name, codename), tuned in batch.items():
                assert session.tune(name, codename) is tuned

    def test_run_batch_thread_scheduling_is_deterministic(self):
        with _session() as serial_session:
            serial = serial_session.run_batch(self.PAIRS)
        clear_sessions()
        with Session(
            TunerConfig.from_env(
                backend="thread", tune_many_workers=2, progress=False
            )
        ) as threaded_session:
            threaded = threaded_session.run_batch(self.PAIRS)
        for key in serial:
            assert (
                serial[key].report.best.to_json()
                == threaded[key].report.best.to_json()
            )
            assert serial[key].report.history == threaded[key].report.history

    def test_config_overrides_at_construction(self):
        session = Session(backend="serial", workers=1, progress=False)
        assert session.config.backend == "serial"
        assert session.config.is_explicit("backend")


def _fake_tuned(app: str, codename: str, seed: int) -> object:
    """A stand-in TunedSession: a real report, no tuning."""
    from types import SimpleNamespace

    from repro.core.configuration import Configuration
    from repro.core.report import TuningReport

    return SimpleNamespace(
        report=TuningReport(
            best=Configuration(program_name=app, label=f"{codename} Config"),
            best_time_s=1.0,
            tuning_time_s=2.0,
            evaluations=1,
            sizes=[16],
            history=[1.0],
            computed_evaluations=1,
            seed=seed,
        )
    )


class TestConcurrentLifecycle:
    """Long-lived-process hygiene: submit/cancel/close racing each
    other must never leak a bare RuntimeError or corrupt the session's
    bookkeeping.  The tuning itself is faked out (instant or gated), so
    these loops hammer the lifecycle paths, not the engine."""

    def test_submit_vs_close_races_surface_only_tuning_error(self, monkeypatch):
        """The closed-check in _pool() and the executor's own shutdown
        flag race a concurrent close(); the loser must see the same
        TuningError an ordinary submit-after-close sees, never the
        executor's bare RuntimeError."""
        monkeypatch.setattr(
            "repro.experiments.runner.session_for",
            lambda app, machine, seed, config, **kwargs: _fake_tuned(
                app, machine.codename, seed
            ),
        )
        unexpected = []
        for _ in range(30):
            session = _session(tune_many_workers=2)
            barrier = threading.Barrier(3)

            def _submitter():
                barrier.wait()
                try:
                    session.submit(APP, DESKTOP)
                except TuningError:
                    pass  # lost the race to close(): the designed outcome
                except BaseException as exc:  # pragma: no cover - the bug
                    unexpected.append(exc)

            threads = [threading.Thread(target=_submitter) for _ in range(2)]
            for thread in threads:
                thread.start()
            barrier.wait()
            session.close()
            for thread in threads:
                thread.join()
        assert unexpected == []

    def test_pending_vs_running_cancel_races(self, monkeypatch):
        """With one pool slot, one job runs and the rest are pending;
        concurrent cancels must land in exactly one consistent state
        per job: cancelled jobs never produce a result, uncancellable
        jobs always do."""
        gate = threading.Event()

        def _gated(app, machine, seed, config, **kwargs):
            assert gate.wait(timeout=30.0)
            return _fake_tuned(app, machine.codename, seed)

        monkeypatch.setattr("repro.experiments.runner.session_for", _gated)
        session = _session(tune_many_workers=1)
        try:
            jobs = [session.submit(APP, DESKTOP) for _ in range(6)]
            outcomes = [None] * len(jobs)

            def _cancel(index):
                outcomes[index] = jobs[index].cancel()

            threads = [
                threading.Thread(target=_cancel, args=(i,))
                for i in range(len(jobs))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            gate.set()
            for job, cancelled in zip(jobs, outcomes):
                if cancelled:
                    assert job.status() is JobStatus.CANCELLED
                    with pytest.raises(Exception):
                        job.result(timeout=10)
                else:
                    assert job.result(timeout=30).report is not None
                    assert job.status() is JobStatus.DONE
            # At most one job (the running one) was uncancellable; with
            # one slot the pending five always cancel cleanly.
            assert outcomes.count(False) <= 1
        finally:
            gate.set()
            session.close()

    def test_jobs_snapshot_is_consistent_under_concurrent_submit(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.experiments.runner.session_for",
            lambda app, machine, seed, config, **kwargs: _fake_tuned(
                app, machine.codename, seed
            ),
        )
        session = _session(tune_many_workers=4)
        per_thread = 25
        try:

            def _spam():
                for _ in range(per_thread):
                    session.submit(APP, DESKTOP)

            threads = [threading.Thread(target=_spam) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            jobs = session.jobs
            assert len(jobs) == 4 * per_thread
            assert len({id(job) for job in jobs}) == len(jobs)
            for job in jobs:
                job.result(timeout=30)
        finally:
            session.close()

    def test_add_done_callback_fires_once_per_job(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.runner.session_for",
            lambda app, machine, seed, config, **kwargs: _fake_tuned(
                app, machine.codename, seed
            ),
        )
        seen = []
        with _session(tune_many_workers=2) as session:
            jobs = [session.submit(APP, DESKTOP) for _ in range(5)]
            for job in jobs:
                job.add_done_callback(seen.append)
            for job in jobs:
                job.result(timeout=30)
        assert sorted(map(id, seen)) == sorted(map(id, jobs))
