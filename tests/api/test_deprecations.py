"""Deprecation shims: warn loudly, behave byte-identically.

Every legacy entrypoint must emit :class:`DeprecationWarning` and
produce reports byte-identical to its ``repro.api`` replacement — the
shims are a migration path, never a behaviour fork.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import Session, TunerConfig
from repro.apps.registry import benchmark, canonical_env_factory
from repro.compiler.compile import compile_program
from repro.core.report import report_to_payload
from repro.core.search import EvolutionaryTuner, autotune
from repro.experiments import runner
from repro.experiments.runner import (
    clear_sessions,
    tune_all_standard,
    tune_many,
    tuned_session,
)
from repro.hardware.machines import DESKTOP

APP = "Strassen"


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def _api_report(**config_overrides):
    with Session(
        TunerConfig.from_env(progress=False, **config_overrides)
    ) as session:
        return _payload(session.tune(APP, DESKTOP).report)


def _payload(report):
    """Report payload restricted to its cache-invariant fields.

    The shim and its replacement run back to back against the same
    shared disk cache, so the first session may physically simulate
    entries the second replays: ``computed_evaluations`` is a
    wall-clock work gauge, not part of the deterministic report."""
    payload = report_to_payload(report)
    payload.pop("computed_evaluations")
    return payload


class TestShimsWarnAndMatch:
    def test_tuned_session(self):
        reference = _api_report(backend="serial")
        clear_sessions()
        with pytest.warns(DeprecationWarning, match="Session.tune"):
            legacy = tuned_session(APP, DESKTOP, backend="serial")
        assert _payload(legacy.report) == reference

    def test_tune_many(self):
        reference = _api_report(backend="serial")
        clear_sessions()
        with pytest.warns(DeprecationWarning, match="run_batch"):
            legacy = tune_many([(APP, "Desktop")], backend="serial", workers=1)
        assert _payload(legacy[(APP, "Desktop")].report) == reference

    def test_tune_all_standard(self, monkeypatch):
        monkeypatch.setattr(
            runner, "standard_pairs", lambda: [(APP, DESKTOP)]
        )
        reference = _api_report(backend="serial")
        clear_sessions()
        with pytest.warns(DeprecationWarning, match="run_batch"):
            legacy = tune_all_standard(backend="serial", workers=1)
        assert _payload(legacy[(APP, "Desktop")].report) == reference

    def test_evolutionary_tuner_legacy_kwargs(self):
        spec = benchmark(APP)
        compiled = compile_program(spec.build_program(), DESKTOP)
        with pytest.warns(DeprecationWarning, match="TunerConfig"):
            tuner = EvolutionaryTuner(
                compiled,
                canonical_env_factory(APP),
                max_size=spec.tuning_size,
                seed=3,
                backend="serial",
                workers=1,
                strategy="evolutionary",
            )
        with tuner:
            legacy = tuner.tune(label="Desktop Config")
        assert _payload(legacy) == _api_report(backend="serial")

    def test_autotune_legacy_kwargs_warn(self):
        spec = benchmark(APP)
        compiled = compile_program(spec.build_program(), DESKTOP)
        with pytest.warns(DeprecationWarning):
            autotune(
                compiled,
                canonical_env_factory(APP),
                max_size=spec.tuning_size,
                seed=3,
                backend="serial",
            )


class TestModernPathsAreWarningClean:
    """Internal code migrated off the shims must stay clean — this is
    what the CI -W error::DeprecationWarning leg enforces end to end."""

    def test_config_construction_does_not_warn(self):
        spec = benchmark(APP)
        compiled = compile_program(spec.build_program(), DESKTOP)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with EvolutionaryTuner(
                compiled,
                canonical_env_factory(APP),
                max_size=spec.tuning_size,
                seed=3,
                config=TunerConfig.from_env(backend="serial", progress=False),
            ) as tuner:
                tuner.tune()

    def test_session_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Session(
                TunerConfig.from_env(backend="serial", progress=False)
            ) as session:
                session.tune(APP, DESKTOP)
                session.run_batch([(APP, "Desktop")])
