"""Layered TunerConfig resolution: precedence, provenance, errors.

The precedence rule lives in exactly one place
(``TunerConfig.resolve``): built-in defaults < ``REPRO_*`` environment
< ``repro.toml`` < explicit arguments.  These tests pin each layer
beating the previous one, the per-field provenance report, the
fail-fast error messages, and the lenient ``from_env`` bridge the
deprecation shims resolve through.
"""

from __future__ import annotations

import pytest

from repro.api.config import TunerConfig, _parse_mini_toml
from repro.errors import ConfigError


class TestPrecedence:
    def test_defaults_when_nothing_is_set(self):
        config = TunerConfig.resolve(environ={})
        assert config == TunerConfig()
        assert all(
            source == "default" for _, _, source in config.provenance_rows()
        )

    def test_env_beats_default(self):
        config = TunerConfig.resolve(
            environ={"REPRO_TUNER_BACKEND": "process", "REPRO_TUNER_WORKERS": "3"}
        )
        assert config.backend == "process"
        assert config.workers == 3
        assert config.provenance["backend"] == "env:REPRO_TUNER_BACKEND"
        assert config.provenance["strategy"] == "default"

    def test_file_beats_env(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text('backend = "thread"\nworkers = 5\n')
        config = TunerConfig.resolve(
            config_file=str(path),
            environ={"REPRO_TUNER_BACKEND": "process", "REPRO_TUNER_WORKERS": "3"},
        )
        assert config.backend == "thread"
        assert config.workers == 5
        assert config.provenance["backend"] == f"file:{path}"

    def test_arg_beats_file_and_env(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text('backend = "thread"\n')
        config = TunerConfig.resolve(
            config_file=str(path),
            environ={"REPRO_TUNER_BACKEND": "process"},
            backend="serial",
        )
        assert config.backend == "serial"
        assert config.provenance["backend"] == "arg"

    def test_none_overrides_mean_not_set(self):
        config = TunerConfig.resolve(
            environ={"REPRO_TUNER_STRATEGY": "bandit"}, strategy=None
        )
        assert config.strategy == "bandit"

    def test_quiet_beats_progress_env(self):
        """The regression the redesign exists for: an explicit
        progress choice (the CLI's --quiet) must beat
        REPRO_TUNER_PROGRESS=1."""
        config = TunerConfig.resolve(
            environ={"REPRO_TUNER_PROGRESS": "1"}, progress=False
        )
        assert config.progress is False
        assert config.provenance["progress"] == "arg"

    def test_every_field_resolves_from_env(self):
        environ = {
            "REPRO_TUNER_BACKEND": "thread",
            "REPRO_TUNER_WORKERS": "2",
            "REPRO_TUNE_MANY_WORKERS": "8",
            "REPRO_TUNER_STRATEGY": "hillclimb",
            "REPRO_SEED": "17",
            "REPRO_CACHE_DIR": "/tmp/some-cache",
            "REPRO_TUNER_CHECKPOINT_EVERY": "16",
            "REPRO_TUNER_RESUME": "1",
            "REPRO_TUNER_PROGRESS": "yes",
            "REPRO_FULL_SCALE": "1",
        }
        config = TunerConfig.resolve(environ=environ)
        assert config == TunerConfig(
            backend="thread",
            workers=2,
            tune_many_workers=8,
            strategy="hillclimb",
            seed=17,
            cache_dir="/tmp/some-cache",
            checkpoint_every=16,
            resume=True,
            progress=True,
            full_scale=True,
        )

    def test_empty_int_env_values_are_unset(self):
        config = TunerConfig.resolve(
            environ={"REPRO_TUNER_WORKERS": "", "REPRO_SEED": "  "}
        )
        assert config.workers == 1
        assert config.seed == 3
        assert config.provenance["workers"] == "default"

    def test_falsy_cache_dir_disables(self):
        for raw in ("0", "off", "none"):
            config = TunerConfig.resolve(environ={"REPRO_CACHE_DIR": raw})
            assert config.cache_dir is None

    def test_empty_flag_env_values_are_unset(self):
        config = TunerConfig.resolve(environ={"REPRO_TUNER_RESUME": ""})
        assert config.resume is False
        assert config.provenance["resume"] == "default"


class TestConfigFile:
    def test_tuner_table_wins_over_top_level(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text(
            'workers = 2\n\n[tuner]\nworkers = 6\nstrategy = "random"\n'
        )
        config = TunerConfig.resolve(config_file=str(path), environ={})
        assert config.workers == 6
        assert config.strategy == "random"

    def test_discovered_via_env_variable(self, tmp_path):
        path = tmp_path / "custom.toml"
        path.write_text('backend = "serial"\n')
        config = TunerConfig.resolve(
            environ={"REPRO_CONFIG_FILE": str(path)}
        )
        assert config.backend == "serial"

    def test_discovered_in_cwd(self, tmp_path, monkeypatch):
        (tmp_path / "repro.toml").write_text("seed = 11\n")
        monkeypatch.chdir(tmp_path)
        assert TunerConfig.resolve(environ={}).seed == 11

    def test_missing_explicit_file_fails(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            TunerConfig.resolve(
                config_file=str(tmp_path / "absent.toml"), environ={}
            )

    def test_unknown_key_fails(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("sneed = 3\n")
        with pytest.raises(ConfigError, match="sneed"):
            TunerConfig.resolve(config_file=str(path), environ={})

    def test_mistyped_value_fails(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text('workers = "four"\n')
        with pytest.raises(ConfigError, match="expected an integer"):
            TunerConfig.resolve(config_file=str(path), environ={})

    def test_mini_toml_parser_matches_needs(self):
        data = _parse_mini_toml(
            "# comment\n"
            'backend = "thread"\n'
            "workers = 4  # inline comment\n"
            "resume = true\n"
            "[tuner]\n"
            'strategy = "bandit"\n',
            "test.toml",
        )
        assert data == {
            "backend": "thread",
            "workers": 4,
            "resume": True,
            "tuner": {"strategy": "bandit"},
        }

    def test_mini_toml_parses_floats(self):
        # Floats became first-class when the cluster heartbeat/timeout
        # knobs landed; a float where an int belongs is still rejected,
        # but at field coercion rather than in the parser.
        assert _parse_mini_toml(
            "cluster_heartbeat_s = 0.5\n", "test.toml"
        ) == {"cluster_heartbeat_s": 0.5}

    def test_mini_toml_rejects_unsupported_values(self):
        with pytest.raises(ConfigError, match="unsupported value"):
            _parse_mini_toml("workers = [4, 5]\n", "test.toml")

    def test_float_where_int_expected_fails_at_coercion(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text("workers = 4.5\n")
        with pytest.raises(ConfigError, match="expected an integer"):
            TunerConfig.resolve(environ={}, config_file=str(path))


class TestErrors:
    def test_bad_env_backend_names_the_variable(self):
        with pytest.raises(ConfigError, match="REPRO_TUNER_BACKEND"):
            TunerConfig.resolve(environ={"REPRO_TUNER_BACKEND": "bogus"})

    def test_bad_env_worker_count_fails_fast(self):
        with pytest.raises(ConfigError, match="expected an integer"):
            TunerConfig.resolve(environ={"REPRO_TUNER_WORKERS": "2.0"})

    def test_bad_arg_strategy_lists_alternatives(self):
        with pytest.raises(ConfigError, match="evolutionary"):
            TunerConfig.resolve(environ={}, strategy="simulated-annealing")

    def test_unknown_override_name(self):
        with pytest.raises(ConfigError, match="wokers"):
            TunerConfig.resolve(environ={}, wokers=2)

    def test_direct_construction_validates(self):
        with pytest.raises(ConfigError, match="workers"):
            TunerConfig(workers=0)
        with pytest.raises(ConfigError, match="checkpoint_every"):
            TunerConfig(checkpoint_every=-1)
        with pytest.raises(ConfigError, match="resume"):
            TunerConfig(resume="yes")


class TestLenientBridge:
    """`from_env` must keep the historical per-module leniency so the
    deprecation shims behave byte-identically."""

    def test_bad_values_fall_back_like_the_legacy_knobs(self):
        config = TunerConfig.from_env(
            environ={
                "REPRO_TUNER_BACKEND": "bogus",
                "REPRO_TUNER_STRATEGY": "bogus",
                "REPRO_TUNER_WORKERS": "2.0",
                "REPRO_TUNE_MANY_WORKERS": "many",
            }
        )
        assert config.backend == "auto"
        assert config.strategy == "evolutionary"
        assert config.workers == 1
        assert config.tune_many_workers == 4
        # An ignored value is never credited to the environment.
        for field in ("backend", "strategy", "workers", "tune_many_workers"):
            assert config.provenance[field] == "default", field

    def test_bad_seed_still_fails_like_the_legacy_reader(self):
        """The historical reader (`int(os.environ["REPRO_SEED"])`)
        crashed on garbage; a silent wrong seed would be worse."""
        with pytest.raises(ConfigError, match="REPRO_SEED"):
            TunerConfig.from_env(environ={"REPRO_SEED": "not-a-number"})

    def test_full_scale_keeps_its_historical_grammar(self):
        """Legacy REPRO_FULL_SCALE enabled on anything but ""/"0" —
        including "off" — and the lenient bridge must reproduce that.
        The strict resolve() path uses the sane flag grammar."""
        assert TunerConfig.from_env(
            environ={"REPRO_FULL_SCALE": "off"}
        ).full_scale is True
        assert TunerConfig.from_env(
            environ={"REPRO_FULL_SCALE": "0"}
        ).full_scale is False
        assert TunerConfig.resolve(
            environ={"REPRO_FULL_SCALE": "off"}
        ).full_scale is False

    def test_valid_env_values_resolve(self):
        config = TunerConfig.from_env(
            environ={
                "REPRO_TUNER_BACKEND": "process",
                "REPRO_TUNER_PROGRESS": "1",
                "REPRO_CACHE_DIR": "/tmp/x",
            }
        )
        assert config.backend == "process"
        assert config.progress is True
        assert config.cache_dir == "/tmp/x"
        # Environment-selected backends must never be "forced".
        assert not config.is_explicit("backend")

    def test_overrides_are_strict_and_explicit(self):
        with pytest.raises(ConfigError):
            TunerConfig.from_env(environ={}, backend="bogus")
        config = TunerConfig.from_env(environ={}, backend="process")
        assert config.is_explicit("backend")


class TestDerivedViews:
    def test_with_overrides_reprovenances(self):
        config = TunerConfig.resolve(environ={"REPRO_TUNER_WORKERS": "2"})
        updated = config.with_overrides(workers=7)
        assert updated.workers == 7
        assert updated.provenance["workers"] == "arg"
        assert config.workers == 2  # immutable

    def test_with_defaults_only_touches_default_fields(self):
        config = TunerConfig.resolve(
            environ={"REPRO_TUNER_PROGRESS": "0"}
        ).with_defaults(progress=True, workers=9)
        # progress came from the environment: untouched.
        assert config.progress is False
        # workers was still default: takes the new default, keeps
        # "default" provenance so later layers may still beat it.
        assert config.workers == 9
        assert config.provenance["workers"] == "default"

    def test_file_choices_are_explicit_env_choices_are_not(self, tmp_path):
        path = tmp_path / "repro.toml"
        path.write_text('backend = "process"\n')
        from_file = TunerConfig.resolve(config_file=str(path), environ={})
        from_env = TunerConfig.resolve(
            environ={"REPRO_TUNER_BACKEND": "process"}
        )
        assert from_file.is_explicit("backend")
        assert not from_env.is_explicit("backend")

    def test_picklable_across_process_boundaries(self):
        import pickle

        config = TunerConfig.resolve(
            environ={"REPRO_TUNER_STRATEGY": "hillclimb"}, workers=2
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.provenance == config.provenance

    def test_provenance_rows_cover_every_field(self):
        rows = TunerConfig().provenance_rows()
        assert [name for name, _, _ in rows] == [
            "backend",
            "workers",
            "batch_lanes",
            "tune_many_workers",
            "strategy",
            "seed",
            "cache_dir",
            "checkpoint_every",
            "resume",
            "retune",
            "progress",
            "full_scale",
            "cluster_address",
            "cluster_workers",
            "cluster_heartbeat_s",
            "cluster_timeout_s",
            "service_address",
            "service_max_jobs",
            "service_rate_limit",
            "fault_spec",
        ]
