"""The public API surface, locked against a committed snapshot.

``repro.api`` is the compatibility contract of the project: names may
be *added* (update the snapshot in the same PR, deliberately), but a
rename or removal of anything here is a breaking change and must fail
CI until the snapshot is consciously regenerated.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import repro.api
from repro.api import Session, TunerConfig, TuningJob

SNAPSHOT = json.loads(
    (pathlib.Path(__file__).resolve().parent / "public_api_snapshot.json").read_text()
)


def test_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == SNAPSHOT["api_all"]


def test_every_exported_name_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_tuner_config_fields_match_snapshot():
    fields = [spec.name for spec in dataclasses.fields(TunerConfig)]
    assert fields == SNAPSHOT["tuner_config_fields"]


def test_session_verbs_match_snapshot():
    public = sorted(
        name
        for name in vars(Session)
        if not name.startswith("_") and callable(getattr(Session, name))
    )
    assert public == SNAPSHOT["session_methods"]


def test_tuning_job_verbs_match_snapshot():
    public = sorted(
        name
        for name in vars(TuningJob)
        if not name.startswith("_") and callable(getattr(TuningJob, name))
    )
    assert public == SNAPSHOT["tuning_job_methods"]


def test_config_env_mapping_is_total():
    """Every TunerConfig field (bar provenance) has exactly one
    environment variable, so no knob can regrow an ad-hoc reader."""
    from repro.api.config import ENV_BY_FIELD

    fields = {
        spec.name
        for spec in dataclasses.fields(TunerConfig)
        if spec.name != "provenance"
    }
    assert set(ENV_BY_FIELD) == fields
