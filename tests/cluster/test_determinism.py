"""Tuning determinism under a degraded or elastic cluster fleet.

The headline guarantee of the ordered-commit protocol: the
:class:`TuningReport` produced with ``backend="cluster"`` is identical
to the serial tuner's even while the fleet is misbehaving — a worker
killed mid-run (dead-worker detection + re-dispatch) or a worker
joining late (elastic join).  The happy-path (app x backend) matrix
lives in ``tests/core/test_parallel_determinism.py``; these legs cover
the failure modes that matrix cannot express.
"""

from __future__ import annotations

import pytest

from repro.api.config import TunerConfig
from repro.apps.registry import benchmark, canonical_env_factory
from repro.cluster import LocalCluster
from repro.compiler.compile import compile_program
from repro.core.result_cache import ResultCache
from repro.core.search import TuningReport, autotune
from repro.hardware.machines import DESKTOP

from tests.core.test_parallel_determinism import (
    SMALL_SIZES,
    baseline_report,
    report_key,
)

APP = "Strassen"


def tune_on_fleet(fleet: LocalCluster, *, workers: int = 2,
                  on_candidate=None) -> TuningReport:
    spec = benchmark(APP)
    compiled = compile_program(spec.build_program(), DESKTOP)
    return autotune(
        compiled,
        canonical_env_factory(APP),
        max_size=min(spec.tuning_size, SMALL_SIZES[APP]),
        seed=1,
        accuracy_fn=spec.accuracy_fn,
        accuracy_target=spec.accuracy_target,
        config=TunerConfig.from_env(
            workers=workers, backend="cluster", cluster_address=fleet.address
        ),
        result_cache=ResultCache(None),
        on_candidate=on_candidate,
    )


def test_external_fleet_report_identical_to_serial():
    """Baseline for the failure legs: a tuner pointed at an external
    coordinator (rather than an owned loopback fleet) matches serial."""
    with LocalCluster(workers=2) as fleet:
        tuned = tune_on_fleet(fleet)
    assert report_key(tuned) == report_key(baseline_report(APP))


def test_worker_killed_mid_run_report_identical_to_serial():
    """Kill a worker after a few commits: its in-flight evaluations are
    re-dispatched to the survivor and the report is unchanged."""
    events = []

    with LocalCluster(
        workers=2, heartbeat_interval=0.1, heartbeat_timeout=2.0
    ) as fleet:
        def on_candidate(event):
            events.append(event)
            if len(events) == 3:
                fleet.kill_worker(0)

        tuned = tune_on_fleet(fleet, on_candidate=on_candidate)
        assert len(fleet.workers) > 1, "kill never happened"
        assert sum(1 for h in fleet.workers if h.alive) == 1
    assert len(events) >= tuned.evaluations
    assert report_key(tuned) == report_key(baseline_report(APP))


def test_worker_joining_late_report_identical_to_serial():
    """Start with a single worker and add a second mid-run: the wider
    fleet deepens speculation but never changes the report."""
    events = []

    with LocalCluster(workers=1) as fleet:
        def on_candidate(event):
            events.append(event)
            if len(events) == 3:
                fleet.add_worker()

        tuned = tune_on_fleet(fleet, workers=2, on_candidate=on_candidate)
        assert len(fleet.workers) == 2, "join never happened"
    assert report_key(tuned) == report_key(baseline_report(APP))


def test_chaotic_fleet_report_identical_to_serial():
    """Kill *and* join during one tuning run, with a tight straggler
    threshold so duplication also fires — the worst realistic storm."""
    events = []

    with LocalCluster(
        workers=2, heartbeat_interval=0.1, heartbeat_timeout=2.0,
        straggler_after=0.5,
    ) as fleet:
        def on_candidate(event):
            events.append(event)
            if len(events) == 2:
                fleet.kill_worker(1)
            elif len(events) == 5:
                fleet.add_worker()

        tuned = tune_on_fleet(fleet, on_candidate=on_candidate)
    assert report_key(tuned) == report_key(baseline_report(APP))


def test_degraded_fleet_falls_back_to_local_compute():
    """An unreachable coordinator degrades the evaluator to local
    compute — slower, but byte-identical and never crashing."""
    spec = benchmark(APP)
    compiled = compile_program(spec.build_program(), DESKTOP)
    tuned = autotune(
        compiled,
        canonical_env_factory(APP),
        max_size=min(spec.tuning_size, SMALL_SIZES[APP]),
        seed=1,
        accuracy_fn=spec.accuracy_fn,
        accuracy_target=spec.accuracy_target,
        config=TunerConfig.from_env(
            workers=2, backend="cluster", cluster_address="127.0.0.1:1"
        ),
        result_cache=ResultCache(None),
    )
    assert report_key(tuned) == report_key(baseline_report(APP))
