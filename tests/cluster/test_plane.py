"""Unit and robustness tests for the distributed evaluation plane.

These drive the real TCP wire protocol over ``127.0.0.1`` with cheap
synthetic handlers, so scheduling behaviour (re-dispatch, elastic
join, straggler duplication, error routing) is exercised without
paying for simulations.  Determinism of actual tuning reports under
the cluster backend lives in ``test_determinism.py`` and the core
backend matrix.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterProtocolError,
    ClusterUnavailable,
    LocalCluster,
    parse_address,
)
from repro.cluster.protocol import encode_message, format_address
from repro.errors import TuningError


def echo(request):
    return request


class TestProtocol:
    def test_parse_address_round_trips(self):
        assert parse_address("example.org:7733") == ("example.org", 7733)
        assert parse_address(" 127.0.0.1:80 ") == ("127.0.0.1", 80)
        assert format_address("h", 1) == "h:1"

    @pytest.mark.parametrize("bad", ["", "no-port", ":7733", "h:port", "h:"])
    def test_parse_address_rejects_malformed(self, bad):
        with pytest.raises(ClusterProtocolError):
            parse_address(bad)

    def test_oversized_message_refused_at_send(self):
        with pytest.raises(ClusterProtocolError, match="limit"):
            encode_message({"type": "blob", "data": b"x" * (17 * 1024 * 1024)})

    def test_oversized_length_prefix_refused_at_receive(self):
        """The receiver validates the length prefix *before* allocating
        anything — a hostile or corrupted 4-GiB header must raise, not
        reserve memory."""
        import io
        import struct

        from repro.cluster.protocol import MAX_MESSAGE_BYTES, recv_frame

        class _FakeSocket:
            def __init__(self, data):
                self._buf = io.BytesIO(data)

            def recv(self, count):
                return self._buf.read(count)

        huge = struct.pack(">I", MAX_MESSAGE_BYTES + 1)
        with pytest.raises(ClusterProtocolError, match="exceeds"):
            recv_frame(_FakeSocket(huge + b"xx"))

    def test_coordinator_survives_oversized_length_prefix(self):
        """A raw peer claiming an oversized frame gets hung up on, and
        the coordinator keeps serving its real clients."""
        import socket
        import struct

        from repro.cluster.protocol import MAX_MESSAGE_BYTES

        with LocalCluster(workers=1, handler=echo) as fleet:
            host, port = parse_address(fleet.address)
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                sock.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1) + b"xx")
                # The coordinator closes the connection cleanly.
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if sock.recv(4096) == b"":
                        break
                else:
                    pytest.fail("coordinator never hung up on the bad peer")
            # And the fleet still answers honest traffic.
            with ClusterClient(fleet.address) as client:
                assert client.submit(21).result(timeout=30) == 21


class TestFleetBasics:
    def test_round_trip_through_real_sockets(self):
        with LocalCluster(workers=2, handler=lambda r: r * 2) as fleet:
            with ClusterClient(fleet.address) as client:
                futures = [client.submit(i) for i in range(20)]
                assert [f.result(timeout=30) for f in futures] == [
                    i * 2 for i in range(20)
                ]

    def test_client_tracks_fleet_width(self):
        with LocalCluster(workers=2, handler=echo) as fleet:
            with ClusterClient(fleet.address) as client:
                assert client.workers == 2
                fleet.add_worker()
                deadline = time.monotonic() + 10
                while client.workers != 3 and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert client.workers == 3

    def test_unreachable_coordinator_raises_cluster_unavailable(self):
        with pytest.raises(ClusterUnavailable):
            ClusterClient("127.0.0.1:1", connect_timeout=2.0)

    def test_remote_evaluation_error_fails_only_that_task(self):
        def picky(request):
            if request == 3:
                raise ValueError("boom")
            return request

        with LocalCluster(workers=2, handler=picky) as fleet:
            with ClusterClient(fleet.address) as client:
                futures = [client.submit(i) for i in range(5)]
                for i, future in enumerate(futures):
                    if i == 3:
                        with pytest.raises(TuningError, match="boom"):
                            future.result(timeout=30)
                    else:
                        assert future.result(timeout=30) == i


class TestRobustness:
    def test_killed_worker_tasks_are_redispatched(self):
        """A worker dying mid-task must not lose the task: the
        coordinator requeues its in-flight work and a (new) worker
        serves it."""
        dispatched = threading.Event()

        def gated(request):
            # The first execution parks forever; the re-dispatched copy
            # (and everything else) returns immediately.
            if request == "gate" and not dispatched.is_set():
                dispatched.set()
                time.sleep(60)
                return "stale"
            return "served"

        with LocalCluster(
            workers=1, handler=gated, heartbeat_interval=0.1,
            heartbeat_timeout=30.0, straggler_after=None,
        ) as fleet:
            with ClusterClient(fleet.address) as client:
                gate = client.submit("gate")
                assert dispatched.wait(timeout=30), "task never dispatched"
                # The sole worker holds the gate; kill it, then give the
                # fleet a replacement to prove nothing was lost.
                fleet.kill_worker(0)
                fleet.add_worker()
                assert gate.result(timeout=30) == "served"
                assert client.submit("x").result(timeout=30) == "served"

    def test_silent_worker_is_reaped_by_heartbeat_timeout(self):
        """A worker that stops heartbeating (but keeps its socket open)
        is declared dead and the fleet width drops."""
        with LocalCluster(
            workers=2, handler=echo, heartbeat_interval=0.1,
            heartbeat_timeout=0.5,
        ) as fleet:
            with ClusterClient(fleet.address) as client:
                # Stop one worker's heartbeats without closing anything.
                handle = fleet.workers[0]
                handle.worker.heartbeat_interval = 3600.0
                handle._loop.call_soon_threadsafe(lambda: None)
                deadline = time.monotonic() + 15
                while client.workers != 1 and time.monotonic() < deadline:
                    time.sleep(0.05)
                # The heartbeat task sleeps its *old* interval before
                # rereading; killing outright is deterministic instead.
                if client.workers != 1:
                    fleet.kill_worker(0)
                    while client.workers != 1 and time.monotonic() < deadline:
                        time.sleep(0.05)
                assert client.workers == 1
                assert client.submit("x").result(timeout=30) == "x"

    def test_straggler_is_speculatively_duplicated(self):
        """A task stuck past ``straggler_after`` runs a duplicate on an
        idle worker; the first result wins."""
        stuck = threading.Event()

        def sticky(request):
            if request == "stick" and not stuck.is_set():
                stuck.set()
                time.sleep(60)
                return "late"
            return "fast"

        with LocalCluster(
            workers=2, handler=sticky, heartbeat_interval=1.0,
            heartbeat_timeout=120.0, straggler_after=0.3,
        ) as fleet:
            with ClusterClient(fleet.address) as client:
                assert client.submit("stick").result(timeout=30) == "fast"

    def test_coordinator_death_fails_outstanding_futures(self):
        fleet = LocalCluster(
            workers=1, handler=lambda r: time.sleep(60),
            heartbeat_interval=0.1,
        )
        client = ClusterClient(fleet.address)
        try:
            future = client.submit("x")
            fleet.close()
            with pytest.raises(ClusterUnavailable):
                future.result(timeout=30)
        finally:
            client.close()

    def test_late_joining_worker_drains_a_backlog(self):
        """Tasks queued beyond the fleet's capacity get picked up by a
        worker that joins after submission."""
        first = threading.Event()

        def slow_once(request):
            if request == 0 and not first.is_set():
                first.set()
                time.sleep(1.0)
            return request

        with LocalCluster(workers=1, handler=slow_once) as fleet:
            with ClusterClient(fleet.address) as client:
                futures = [client.submit(i) for i in range(10)]
                fleet.add_worker()
                assert [f.result(timeout=30) for f in futures] == list(range(10))


class TestCommandLine:
    def test_parser_covers_both_roles(self):
        from repro.cluster.__main__ import _build_parser

        parser = _build_parser()
        coord = parser.parse_args(
            ["coordinator", "--bind", "0.0.0.0:7000", "--heartbeat-timeout", "3"]
        )
        assert (coord.role, coord.bind) == ("coordinator", "0.0.0.0:7000")
        assert coord.heartbeat_timeout == 3.0
        worker = parser.parse_args(
            ["worker", "--connect", "h:7000", "--slots", "4"]
        )
        assert (worker.role, worker.connect, worker.slots) == ("worker", "h:7000", 4)

    def test_worker_role_requires_connect(self, capsys):
        from repro.cluster.__main__ import _build_parser

        with pytest.raises(SystemExit):
            _build_parser().parse_args(["worker"])


class TestLongLivedProcessHygiene:
    """Regression tests for leaks that only matter in a daemon."""

    def test_close_with_wedged_loop_thread_warns_and_marks_unusable(
        self, caplog
    ):
        """A loop thread that never exits must not leak silently:
        close() logs a warning and flips ``wedged`` so a long-lived
        owner can notice and discard the client."""
        import logging

        with LocalCluster(workers=1, handler=echo) as fleet:
            client = ClusterClient(fleet.address, connect_timeout=0.5)
            # Simulate a wedged loop thread: swap in a thread that
            # outlives any join timeout.
            parked = threading.Event()
            wedged = threading.Thread(
                target=parked.wait, name="wedged-loop", daemon=True
            )
            wedged.start()
            real_thread = client._thread
            client._thread = wedged
            try:
                with caplog.at_level(logging.WARNING, logger="repro.cluster.client"):
                    client.close()
                assert client.wedged
                assert any(
                    "did not exit" in record.message for record in caplog.records
                )
                # Unusable: submits fail fast instead of queueing.
                with pytest.raises(ClusterUnavailable):
                    raise client.submit("x").exception()
            finally:
                parked.set()
                real_thread.join(timeout=10)

    def test_clean_close_is_not_wedged(self):
        with LocalCluster(workers=1, handler=echo) as fleet:
            client = ClusterClient(fleet.address)
            client.close()
            assert not client.wedged

    def test_cancelled_task_record_reaped_when_its_worker_dies(self):
        """A task cancelled while assigned, whose worker then dies,
        must be popped from the coordinator's task table during the
        worker-drop requeue — not leak until the client disconnects."""
        import asyncio

        from repro.cluster.coordinator import Coordinator, _Client, _Task, _Worker

        class FakeWriter:
            def is_closing(self):
                return False

            def write(self, data):
                pass

            def close(self):
                pass

        loop = asyncio.new_event_loop()
        try:
            coordinator = Coordinator()
            coordinator._loop = loop
            client = _Client("client-1", FakeWriter())
            coordinator._clients[client.name] = client
            worker = _Worker("worker-1", FakeWriter(), slots=1)
            coordinator._workers[worker.name] = worker

            coordinator._submit(client, "7", request="payload")
            scoped = "client-1/7"
            assert worker.inflight == {scoped}  # dispatched immediately
            coordinator._cancel(client, "7")
            task = coordinator._tasks[scoped]
            assert task.done and task.assigned == {"worker-1"}

            coordinator._drop_worker(worker)
            assert scoped not in coordinator._tasks
            assert not coordinator._queue
        finally:
            loop.close()

    def test_speculative_copy_keeps_cancelled_record_until_last_worker(self):
        """With a duplicate still running elsewhere, dropping one
        worker must keep the done record (the other worker's finish
        reaps it) — then dropping the second worker reaps it."""
        import asyncio

        from repro.cluster.coordinator import Coordinator, _Client, _Worker

        class FakeWriter:
            def is_closing(self):
                return False

            def write(self, data):
                pass

            def close(self):
                pass

        loop = asyncio.new_event_loop()
        try:
            coordinator = Coordinator()
            coordinator._loop = loop
            client = _Client("client-1", FakeWriter())
            coordinator._clients[client.name] = client
            first = _Worker("worker-1", FakeWriter(), slots=1)
            second = _Worker("worker-2", FakeWriter(), slots=1)
            coordinator._workers[first.name] = first

            coordinator._submit(client, "9", request="payload")
            scoped = "client-1/9"
            task = coordinator._tasks[scoped]
            # Speculatively duplicate onto the second worker by hand.
            coordinator._workers[second.name] = second
            coordinator._assign(task, second)
            coordinator._cancel(client, "9")
            assert task.done and task.assigned == {"worker-1", "worker-2"}

            coordinator._drop_worker(first)
            assert scoped in coordinator._tasks  # copy still running
            coordinator._drop_worker(second)
            assert scoped not in coordinator._tasks
        finally:
            loop.close()
