"""Unit tests for kernel generation, choice expansion and compilation."""

import pytest

from repro.compiler.choices import ChoiceKind, expand_transform
from repro.compiler.compile import compile_program
from repro.compiler.kernelgen import KernelVariant, generate_kernels_for_choice
from repro.compiler.localmem import fits_local_memory, local_memory_applicable, tile_elements
from repro.compiler.opencl_source import generate_global_source, generate_local_source
from repro.errors import CompileError
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER
from repro.lang import Choice, CostSpec, Pattern, Rule, Transform, make_program

from tests.conftest import make_scale_program, make_stencil_program, scale_rule, stencil_rule


class TestLocalMemAnalysis:
    def test_applicable_requires_bounding_box(self):
        rule = stencil_rule(5)
        cost = rule.cost.resolve({})
        assert local_memory_applicable(rule, cost)
        scale = scale_rule()
        assert not local_memory_applicable(scale, scale.cost.resolve({}))

    def test_tile_sizing(self):
        cost = stencil_rule(5).cost.resolve({})
        assert tile_elements(cost, 128) == 132

    def test_fits_local_memory(self):
        cost = stencil_rule(5).cost.resolve({})
        assert fits_local_memory(cost, 128)
        assert not fits_local_memory(cost, 128, capacity_bytes=64)


class TestSourceGeneration:
    def test_global_source_mentions_global_memory(self):
        rule = stencil_rule(5)
        source = generate_global_source("k", rule, rule.cost.resolve({}))
        assert "__kernel void k" in source
        assert "__global" in source
        assert "__local" not in source

    def test_local_source_has_cooperative_load_and_barrier(self):
        rule = stencil_rule(5)
        source = generate_local_source("k", rule, rule.cost.resolve({}))
        assert "__local double tile" in source
        assert "barrier(CLK_LOCAL_MEM_FENCE)" in source

    def test_sources_differ_between_variants(self):
        rule = stencil_rule(5)
        cost = rule.cost.resolve({})
        assert generate_global_source("k", rule, cost) != generate_local_source(
            "k", rule, cost
        )

    def test_source_parameterised_by_width(self):
        a = stencil_rule(3)
        b = stencil_rule(9)
        assert generate_global_source("k", a, a.cost.resolve({})) != (
            generate_global_source("k", b, b.cost.resolve({}))
        )


class TestKernelGeneration:
    def test_stencil_gets_both_variants(self):
        program = make_stencil_program(5)
        transform = program.entry_transform
        kernels, report = generate_kernels_for_choice(
            transform, transform.choices[0], program, DESKTOP
        )
        variants = {k.variant for k in kernels}
        assert variants == {KernelVariant.GLOBAL, KernelVariant.LOCAL}
        assert report.rejected_reason is None

    def test_elementwise_gets_only_global(self):
        """Bounding box of one: no local-memory version (Sec. 3.1)."""
        program = make_scale_program()
        transform = program.entry_transform
        kernels, _ = generate_kernels_for_choice(
            transform, transform.choices[0], program, DESKTOP
        )
        assert [k.variant for k in kernels] == [KernelVariant.GLOBAL]

    def test_external_call_rejected(self):
        rule = Rule(
            name="ext", reads=("In",), writes=("Out",), body=lambda ctx: None,
            calls_external=True,
        )
        transform = Transform(name="T", inputs=("In",), outputs=("Out",),
                              choices=(Choice(name="c", rule=rule),))
        program = make_program("p", [transform], "T")
        kernels, report = generate_kernels_for_choice(
            transform, transform.choices[0], program, DESKTOP
        )
        assert kernels == []
        assert "external" in report.rejected_reason

    def test_hostile_platform_rejected_by_compile_attempt(self):
        rule = Rule(
            name="fragile", reads=("In",), writes=("Out",), body=lambda ctx: None,
            opencl_hostile_platforms=(DESKTOP.opencl_platform,),
        )
        transform = Transform(name="T", inputs=("In",), outputs=("Out",),
                              choices=(Choice(name="c", rule=rule),))
        program = make_program("p", [transform], "T")
        kernels, report = generate_kernels_for_choice(
            transform, transform.choices[0], program, DESKTOP
        )
        assert kernels == []
        assert "fails to compile" in report.rejected_reason
        # ... but compiles fine on other platforms.
        kernels, report = generate_kernels_for_choice(
            transform, transform.choices[0], program, LAPTOP
        )
        assert kernels


class TestChoiceExpansion:
    def test_cpu_variant_always_first(self):
        program = make_stencil_program(5)
        choices, _, _ = expand_transform(program.entry_transform, program, DESKTOP)
        assert choices[0].kind is ChoiceKind.CPU_RULE
        assert choices[0].name == "direct/cpu"

    def test_three_way_choice_for_stencils(self):
        """CPU / OpenCL-global / OpenCL-local: the Convolve* pattern."""
        program = make_stencil_program(5)
        choices, kernels, _ = expand_transform(program.entry_transform, program, DESKTOP)
        kinds = [c.kind for c in choices]
        assert kinds == [
            ChoiceKind.CPU_RULE,
            ChoiceKind.OPENCL_GLOBAL,
            ChoiceKind.OPENCL_LOCAL,
        ]
        assert len(kernels) == 2

    def test_opencl_choices_carry_kernels(self):
        program = make_stencil_program(5)
        choices, _, _ = expand_transform(program.entry_transform, program, DESKTOP)
        for choice in choices:
            assert choice.uses_opencl == (choice.kernel is not None)


class TestCompileProgram:
    def test_kernel_count(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        assert compiled.kernel_count == 2

    def test_training_info_selectors(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        spec = compiled.training_info.selectors["Stencil"]
        assert spec.num_algorithms == 3
        assert spec.max_levels == 12

    def test_training_info_tunables(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        names = set(compiled.training_info.tunables)
        assert {"lws_Stencil", "gpu_ratio_Stencil", "split_Stencil",
                "seq_par_cutoff"} <= names

    def test_config_space_is_large(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        assert compiled.training_info.log10_config_space() > 50

    def test_choice_index_lookup(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        transform = compiled.transform("Stencil")
        assert transform.choice_index("direct/opencl_local") == 2
        with pytest.raises(KeyError):
            transform.choice_index("nope")

    def test_unknown_transform_lookup(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        with pytest.raises(CompileError):
            compiled.transform("Ghost")

    def test_entry_property(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        assert compiled.entry.transform.name == "Stencil"

    def test_user_tunables_compiled(self):
        rule = stencil_rule(3)
        transform = Transform(
            name="T", inputs=("In",), outputs=("Out",),
            choices=(Choice(name="c", rule=rule),),
            user_tunables={"quality": (1, 10, 5, "uniform")},
        )
        compiled = compile_program(make_program("p", [transform], "T"), DESKTOP)
        spec = compiled.training_info.tunables["quality"]
        assert (spec.lo, spec.hi, spec.default) == (1, 10, 5)

    def test_same_choice_lists_across_machines(self):
        """Configurations migrate between machines (Figure 7), so the
        expanded choice lists must agree."""
        program = make_stencil_program(5)
        names = {}
        for machine in (DESKTOP, SERVER, LAPTOP):
            compiled = compile_program(program, machine)
            names[machine.codename] = [
                c.name for c in compiled.transform("Stencil").exec_choices
            ]
        assert names["Desktop"] == names["Server"] == names["Laptop"]
