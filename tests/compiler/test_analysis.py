"""Unit tests for the CDG, dependency analysis and data-movement
classification (paper Sections 3.1 / 3.2)."""

import pytest

from repro.compiler.cdg import build_choice_graph, outputs_in_cycle, step_order
from repro.compiler.data_movement import (
    Backend,
    CopyOutClass,
    ScheduledProducer,
    classify_copyouts,
)
from repro.compiler.dependency_analysis import analyse_rule, phase_two_disqualifiers
from repro.errors import CompileError
from repro.lang import Choice, Pattern, Rule, Step, Transform, make_program


def noop(ctx):
    return None


def rule(reads, writes, pattern=Pattern.DATA_PARALLEL, **kw):
    return Rule(name="r", reads=tuple(reads), writes=tuple(writes), body=noop,
                pattern=pattern, **kw)


def leaf(name, inputs, outputs, the_rule):
    return Transform(name=name, inputs=tuple(inputs), outputs=tuple(outputs),
                     choices=(Choice(name="only", rule=the_rule),))


class TestChoiceGraph:
    def test_leaf_graph_structure(self):
        transform = leaf("T", ["In"], ["Out"], rule(["In"], ["Out"]))
        program = make_program("p", [transform], "T")
        graph = build_choice_graph(transform, transform.choices[0], program)
        assert ("matrix", "In") in graph
        assert ("matrix", "Out") in graph
        rule_nodes = [n for n in graph if n[0] == "rule"]
        assert len(rule_nodes) == 1

    def test_inplace_rule_forms_cycle(self):
        transform = leaf("T", ["Data"], ["Data"], rule(["Data"], ["Data"]))
        program = make_program("p", [transform], "T")
        assert outputs_in_cycle(transform, transform.choices[0], program)

    def test_pure_pipeline_has_no_cycle(self):
        transform = leaf("T", ["In"], ["Out"], rule(["In"], ["Out"]))
        program = make_program("p", [transform], "T")
        assert not outputs_in_cycle(transform, transform.choices[0], program)

    def test_step_order_detects_use_before_def(self):
        inner = leaf("Inner", ["In"], ["Out"], rule(["In"], ["Out"]))
        top = Transform(
            name="Top", inputs=("In",), outputs=("Out",),
            choices=(
                Choice(
                    name="bad",
                    steps=(
                        # Reads `buf` before any step produces it.
                        Step(transform="Inner", bindings={"In": "buf"}),
                        Step(transform="Inner", bindings={"Out": "buf"}),
                    ),
                    intermediates={"buf": lambda s, p: s["In"]},
                ),
            ),
        )
        program = make_program("p", [top, inner], "Top")
        with pytest.raises(CompileError):
            step_order(top, top.choices[0], program)

    def test_step_order_detects_missing_output(self):
        inner = leaf("Inner", ["In"], ["Mid"], rule(["In"], ["Mid"]))
        top = Transform(
            name="Top", inputs=("In",), outputs=("Out",),
            choices=(
                Choice(name="c", steps=(Step(transform="Inner", bindings={"Mid": "buf"}),),
                       intermediates={"buf": lambda s, p: s["In"]}),
            ),
        )
        program = make_program("p", [top, inner], "Top")
        with pytest.raises(CompileError):
            step_order(top, top.choices[0], program)


class TestPhaseOne:
    def make(self, pattern, reads=("In",), writes=("Out",)):
        transform = leaf("T", set(reads) | {"In"}, writes, rule(reads, writes, pattern))
        program = make_program("p", [transform], "T")
        return transform, transform.choices[0], program

    def test_data_parallel_eligible(self):
        assert analyse_rule(*self.make(Pattern.DATA_PARALLEL)).eligible

    def test_sequential_eligible_even_inplace(self):
        transform = leaf("T", ["Data"], ["Data"],
                         rule(["Data"], ["Data"], Pattern.SEQUENTIAL))
        program = make_program("p", [transform], "T")
        assert analyse_rule(transform, transform.choices[0], program).eligible

    def test_wavefront_rejected(self):
        result = analyse_rule(*self.make(Pattern.WAVEFRONT))
        assert not result.eligible
        assert "wavefront" in result.reason

    def test_recursive_rejected(self):
        assert not analyse_rule(*self.make(Pattern.RECURSIVE)).eligible

    def test_data_parallel_inplace_rejected(self):
        """A DP rule whose output feeds itself has a true cycle."""
        transform = leaf("T", ["Data"], ["Data"], rule(["Data"], ["Data"]))
        program = make_program("p", [transform], "T")
        result = analyse_rule(transform, transform.choices[0], program)
        assert not result.eligible

    def test_composite_choices_not_directly_eligible(self):
        inner = leaf("Inner", ["In"], ["Out"], rule(["In"], ["Out"]))
        top = Transform(
            name="Top", inputs=("In",), outputs=("Out",),
            choices=(Choice(name="c", steps=(Step(transform="Inner"),)),),
        )
        program = make_program("p", [top, inner], "Top")
        assert not analyse_rule(top, top.choices[0], program).eligible


class TestPhaseTwo:
    def test_external_library_disqualifies(self):
        reasons = phase_two_disqualifiers(
            rule(["In"], ["Out"], calls_external=True)
        )
        assert any("external" in r for r in reasons)

    def test_inline_native_disqualifies(self):
        reasons = phase_two_disqualifiers(
            rule(["In"], ["Out"], has_inline_native=True)
        )
        assert any("native" in r for r in reasons)

    def test_clean_rule_passes(self):
        assert phase_two_disqualifiers(rule(["In"], ["Out"])) == []


class TestCopyOutClassification:
    """Paper Section 3.2: must copy-out / reused / may copy-out."""

    def test_gpu_then_cpu_is_must_copy_out(self):
        steps = [
            ScheduledProducer(Backend.GPU, produces=("A",), consumes=()),
            ScheduledProducer(Backend.CPU, produces=("B",), consumes=("A",)),
        ]
        classes = classify_copyouts(steps)
        assert classes[0]["A"] is CopyOutClass.MUST_COPY_OUT

    def test_gpu_then_gpu_is_reused(self):
        steps = [
            ScheduledProducer(Backend.GPU, produces=("A",), consumes=()),
            ScheduledProducer(Backend.GPU, produces=("B",), consumes=("A",)),
        ]
        classes = classify_copyouts(steps)
        assert classes[0]["A"] is CopyOutClass.REUSED

    def test_dynamic_consumer_is_may_copy_out(self):
        steps = [
            ScheduledProducer(Backend.GPU, produces=("A",), consumes=(),
                              dynamic_consumer=True),
            ScheduledProducer(Backend.CPU, produces=("B",), consumes=("A",)),
        ]
        classes = classify_copyouts(steps)
        assert classes[0]["A"] is CopyOutClass.MAY_COPY_OUT

    def test_unconsumed_output_returns_to_final_consumer(self):
        steps = [ScheduledProducer(Backend.GPU, produces=("A",), consumes=())]
        assert classify_copyouts(steps)[0]["A"] is CopyOutClass.MUST_COPY_OUT
        assert (
            classify_copyouts(steps, final_consumer=Backend.GPU)[0]["A"]
            is CopyOutClass.REUSED
        )
        assert (
            classify_copyouts(steps, final_dynamic=True)[0]["A"]
            is CopyOutClass.MAY_COPY_OUT
        )

    def test_overwritten_before_read_stays_on_device(self):
        steps = [
            ScheduledProducer(Backend.GPU, produces=("A",), consumes=()),
            ScheduledProducer(Backend.GPU, produces=("A",), consumes=()),
            ScheduledProducer(Backend.CPU, produces=("B",), consumes=("A",)),
        ]
        classes = classify_copyouts(steps)
        assert classes[0]["A"] is CopyOutClass.REUSED
        assert classes[1]["A"] is CopyOutClass.MUST_COPY_OUT

    def test_cpu_steps_not_classified(self):
        steps = [ScheduledProducer(Backend.CPU, produces=("A",), consumes=())]
        assert classify_copyouts(steps) == {}
