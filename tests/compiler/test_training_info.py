"""Unit tests for the training-information structures."""

import math

import pytest

from repro.compiler.training_info import (
    MAX_INPUT_SIZE,
    SELECTOR_LEVELS,
    SelectorSpec,
    TrainingInfo,
    TunableSpec,
)
from repro.errors import CompileError


class TestSelectorSpec:
    def test_twelve_levels_default(self):
        """Section 5.3: every transform provides 12 levels."""
        spec = SelectorSpec(name="T", num_algorithms=3)
        assert spec.max_levels == SELECTOR_LEVELS == 12

    def test_needs_algorithms(self):
        with pytest.raises(CompileError):
            SelectorSpec(name="T", num_algorithms=0)

    def test_needs_levels(self):
        with pytest.raises(CompileError):
            SelectorSpec(name="T", num_algorithms=2, max_levels=0)


class TestTunableSpec:
    def test_default_in_range(self):
        with pytest.raises(CompileError):
            TunableSpec(name="t", lo=1, hi=10, default=11)

    def test_unknown_scale(self):
        with pytest.raises(CompileError):
            TunableSpec(name="t", lo=1, hi=10, default=5, scale="quadratic")

    def test_cardinality(self):
        assert TunableSpec(name="t", lo=0, hi=8, default=8,
                           scale="uniform").cardinality == 9

    def test_clamp(self):
        spec = TunableSpec(name="t", lo=2, hi=6, default=4)
        assert spec.clamp(0) == 2
        assert spec.clamp(100) == 6
        assert spec.clamp(5) == 5


class TestConfigSpaceSize:
    def make(self, algorithms, tunable_range=0):
        info = TrainingInfo(program_name="p")
        info.selectors["T"] = SelectorSpec(name="T", num_algorithms=algorithms)
        if tunable_range:
            info.tunables["t"] = TunableSpec(
                name="t", lo=1, hi=tunable_range, default=1
            )
        return info

    def test_single_algorithm_contributes_nothing(self):
        assert self.make(1).log10_config_space() == pytest.approx(0.0)

    def test_grows_with_algorithms(self):
        assert self.make(4).log10_config_space() > self.make(2).log10_config_space()

    def test_cutoff_space_dominates(self):
        """11 cutoffs drawn from [1, 2^25] dwarf the algorithm choice."""
        space = self.make(2).log10_config_space()
        cutoff_share = (SELECTOR_LEVELS - 1) * math.log10(MAX_INPUT_SIZE)
        assert space > cutoff_share

    def test_tunables_add_their_cardinality(self):
        with_tunable = self.make(2, tunable_range=1000).log10_config_space()
        without = self.make(2).log10_config_space()
        assert with_tunable - without == pytest.approx(3.0, abs=0.01)
