"""Cold-vs-prepared equivalence of the prepared-plan layer.

The memoised lowering in :mod:`repro.compiler.prepared` (and the
per-run selector/composite memos on ``RuntimeState``) must be
invisible: evaluating one ``CompiledProgram`` under several
configurations and sizes must produce bit-for-bit the same
``RunResult`` as a fresh compile for each run.
"""

import numpy as np
import pytest

from repro.apps.registry import benchmark, canonical_env_factory
from repro.compiler.compile import compile_program
from repro.compiler.prepared import PreparedPlans, row_chunks
from repro.core.configuration import default_configuration
from repro.core.selector import Selector
from repro.hardware.machines import DESKTOP, SERVER
from repro.runtime.executor import run_program
from repro.runtime.invocation import _row_chunks

#: Small but structurally interesting apps: a composite with OpenCL
#: kernels, a recursive divide-and-conquer, a polyalgorithm with deep
#: spawn recursion, and the red-black composite with intermediates.
APPS = (
    ("SeparableConv.", 96),
    ("Strassen", 64),
    ("Sort", 1024),
    ("Poisson2D SOR", 32),
)


def _variants(training):
    """Configurations that exercise different lowering paths."""
    base = default_configuration(training)
    splitty = base.copy("splitty")
    for name in training.tunables:
        if name.startswith("split_"):
            splitty.tunables[name] = 7
        if name == "seq_par_cutoff":
            splitty.tunables[name] = 16
    flipped = base.copy("flipped")
    for name, spec in training.selectors.items():
        flipped.selectors[name] = Selector.constant(spec.num_algorithms - 1)
    for name, spec in training.tunables.items():
        if name.startswith("gpu_ratio_"):
            flipped.tunables[name] = 5
    return (base, splitty, flipped)


def _snapshot(result):
    return (
        result.time_s,
        result.stats.as_dict(),
        {name: array.copy() for name, array in result.env.items()},
    )


@pytest.mark.parametrize("app_name,size", APPS, ids=[a for a, _ in APPS])
@pytest.mark.parametrize("machine", (DESKTOP, SERVER), ids=lambda m: m.codename)
def test_prepared_plans_match_fresh_compile(app_name, size, machine):
    spec = benchmark(app_name)
    env_factory = canonical_env_factory(app_name)
    shared = compile_program(spec.build_program(), machine)
    training = shared.training_info

    runs = [(config, s) for config in _variants(training) for s in (size, size // 2)]
    for config, run_size in runs:
        try:
            config.validate(training)
        except Exception:
            continue
        # Prepared path: the shared compiled program accumulates plan
        # caches across every configuration and size in this loop.
        warm = run_program(shared, config, env_factory(run_size))
        # Cold path: a fresh compile whose plans have never run.
        fresh = compile_program(spec.build_program(), machine)
        cold = run_program(fresh, config, env_factory(run_size))

        warm_time, warm_stats, warm_env = _snapshot(warm)
        cold_time, cold_stats, cold_env = _snapshot(cold)
        assert warm_time == cold_time, (config.label, run_size)
        assert warm_stats == cold_stats, (config.label, run_size)
        assert warm_env.keys() == cold_env.keys()
        for name in warm_env:
            assert np.array_equal(warm_env[name], cold_env[name]), (
                config.label,
                run_size,
                name,
            )


class TestPlanCaching:
    def test_plans_cached_on_compiled_program(self):
        compiled = compile_program(
            benchmark("Strassen").build_program(), DESKTOP
        )
        plans = compiled.plans
        assert isinstance(plans, PreparedPlans)
        assert compiled.plans is plans  # lazily built once
        plan = plans.transform_plan(compiled.program.entry)
        assert plans.transform_plan(compiled.program.entry) is plan
        assert plan.num_choices == len(compiled.entry.exec_choices)

    def test_base_params_merge_program_and_transform_defaults(self):
        compiled = compile_program(
            benchmark("Poisson2D SOR").build_program(), DESKTOP
        )
        plan = compiled.plans.transform_plan("SORLoop")
        # Program-wide default merged with the transform's own params.
        assert plan.base_params["iterations"] == pytest.approx(20.0)

    def test_static_costs_resolved_ahead_of_time(self):
        compiled = compile_program(
            benchmark("Tridiagonal Solver").build_program(), DESKTOP
        )
        plan = compiled.plans.transform_plan("TridiagonalSolve")
        by_name = {c.exec_choice.name: c for c in plan.choices}
        # thomas_direct has a constant cost spec: resolved once.
        thomas = next(c for n, c in by_name.items() if "thomas" in n)
        assert thomas.static_cost is not None
        assert thomas.cost_for({}) is thomas.static_cost
        # pcr's cost fields depend on _size: must resolve per call.
        pcr = next(c for n, c in by_name.items() if n.startswith("pcr"))
        assert pcr.static_cost is None
        assert pcr.cost_for({"_size": 4.0}).kernel_launches == 2


class TestRowChunkMemo:
    def test_memoised_result_matches_recomputation(self):
        for height, count in ((1, 1), (7, 3), (100, 8), (33, 64)):
            chunks = row_chunks(height, count)
            assert chunks is row_chunks(height, count)  # memo hit
            edges = [round(i * height / max(1, min(count, height)) )
                     for i in range(max(1, min(count, height)) + 1)]
            expected = tuple(
                (edges[i], edges[i + 1])
                for i in range(len(edges) - 1)
                if edges[i] < edges[i + 1]
            )
            assert chunks == expected

    def test_invocation_alias_preserved(self):
        assert _row_chunks(10, 3) == row_chunks(10, 3)
