"""Unit tests for the GPU memory manager (paper Section 4.3)."""

import numpy as np
import pytest

from repro.errors import RuntimeFault
from repro.hardware.transfer import TransferModel
from repro.runtime.memory_manager import GpuMemoryManager


def make_manager(**kw) -> GpuMemoryManager:
    return GpuMemoryManager(TransferModel(latency_s=1e-5, bandwidth_gbs=10.0), **kw)


class TestAllocation:
    def test_consolidated_buffer_per_matrix(self):
        manager = make_manager()
        host = np.zeros((8, 8))
        buffer1, created1 = manager.get_or_create(host)
        buffer2, created2 = manager.get_or_create(host)
        assert created1 and not created2
        assert buffer1 is buffer2
        assert manager.allocations == 1

    def test_distinct_arrays_get_distinct_buffers(self):
        manager = make_manager()
        a, b = np.zeros(4), np.zeros(4)
        manager.get_or_create(a)
        manager.get_or_create(b)
        assert manager.table_size() == 2


class TestCopyInDedup:
    def test_first_copy_pays_transfer(self):
        manager = make_manager()
        host = np.ones(1000)
        assert manager.copy_in(host) > 0
        assert manager.copy_in_transfers == 1

    def test_second_copy_deduplicated(self):
        """Paper: if the data is already on the GPU, the copy-in task
        completes without executing."""
        manager = make_manager()
        host = np.ones(1000)
        manager.copy_in(host)
        assert manager.copy_in(host) == 0.0
        assert manager.copy_in_dedups == 1

    def test_device_write_enables_dedup(self):
        """Data produced by a previous kernel is 'already there'."""
        manager = make_manager()
        host = np.ones(10)
        manager.get_or_create(host)
        manager.record_device_write(host, (0, 10))
        assert manager.device_has_current(host)

    def test_host_write_invalidates(self):
        manager = make_manager()
        host = np.ones(10)
        manager.copy_in(host)
        manager.invalidate_device(host)
        assert not manager.device_has_current(host)
        assert manager.copy_in(host) > 0

    def test_dedup_can_be_disabled(self):
        manager = make_manager(dedup_copy_ins=False)
        host = np.ones(10)
        manager.copy_in(host)
        assert manager.copy_in(host) > 0
        assert not manager.device_has_current(host)

    def test_copy_in_actually_copies(self):
        manager = make_manager()
        host = np.arange(4.0)
        manager.copy_in(host)
        buffer = manager.lookup(host)
        np.testing.assert_array_equal(buffer.device, host)


class TestEagerCopyOut:
    def test_must_copy_out_updates_host(self):
        manager = make_manager()
        host = np.zeros(10)
        buffer, _ = manager.get_or_create(host)
        buffer.device[:] = 7.0
        manager.record_device_write(host, (0, 10))
        transfer = manager.eager_copy_out(host, (0, 10))
        assert transfer > 0
        np.testing.assert_array_equal(host, np.full(10, 7.0))
        assert manager.eager_copy_outs == 1

    def test_partial_rows(self):
        manager = make_manager()
        host = np.zeros((8, 4))
        buffer, _ = manager.get_or_create(host)
        buffer.device[:4] = 1.0
        manager.record_device_write(host, (0, 4))
        manager.eager_copy_out(host, (0, 4))
        assert host[:4].sum() == 16.0
        assert host[4:].sum() == 0.0

    def test_copy_out_without_buffer_raises(self):
        manager = make_manager()
        with pytest.raises(RuntimeFault):
            manager.eager_copy_out(np.zeros(4), (0, 4))


class TestLazyCopyOut:
    def test_ensure_host_copies_pending(self):
        manager = make_manager()
        host = np.zeros(10)
        buffer, _ = manager.get_or_create(host)
        buffer.device[:] = 3.0
        manager.record_device_write(host, (0, 10))
        assert manager.ensure_host(host, now=1.0) > 0
        np.testing.assert_array_equal(host, np.full(10, 3.0))
        assert manager.lazy_copy_outs == 1

    def test_ensure_host_noop_when_current(self):
        manager = make_manager()
        host = np.zeros(10)
        assert manager.ensure_host(host) == 0.0
        manager.copy_in(host)
        assert manager.ensure_host(host) == 0.0

    def test_ensure_host_waits_for_kernel(self):
        """The consumer waits for the producing kernel to finish."""
        manager = make_manager()
        host = np.zeros(10)
        manager.get_or_create(host)
        manager.record_device_write(host, (0, 10), available_at=5.0)
        early = manager.ensure_host(host, now=1.0)
        assert early >= 4.0  # waited for the device

    def test_no_wait_after_kernel_end(self):
        manager = make_manager()
        host = np.zeros(10)
        manager.get_or_create(host)
        manager.record_device_write(host, (0, 10), available_at=5.0)
        late = manager.ensure_host(host, now=10.0)
        assert late < 1.0


class TestHybridSplit:
    def test_cpu_write_preserves_pending_device_rows(self):
        """A hybrid GPU/CPU split writes disjoint rows; the CPU write
        must not discard the GPU's pending rows."""
        manager = make_manager()
        host = np.zeros((8, 2))
        buffer, _ = manager.get_or_create(host)
        buffer.device[:4] = 9.0
        manager.record_device_write(host, (0, 4))
        # CPU writes rows 4..8 on the host, invalidating the device copy.
        host[4:] = 1.0
        manager.invalidate_device(host)
        # The pending GPU rows are still recoverable.
        manager.ensure_host(host)
        assert host[:4].sum() == 8 * 9.0
        assert host[4:].sum() == 8 * 1.0

    def test_copy_in_merges_pending_first(self):
        """A full-buffer copy-in must not clobber device-only rows."""
        manager = make_manager()
        host = np.zeros((4, 2))
        buffer, _ = manager.get_or_create(host)
        buffer.device[:2] = 5.0
        manager.record_device_write(host, (0, 2))
        manager.invalidate_device(host)
        manager.copy_in(host)
        buffer = manager.lookup(host)
        assert buffer.device[:2].sum() == 4 * 5.0  # merged, then copied
        np.testing.assert_array_equal(buffer.device, host)


class TestTrafficAccounting:
    def test_bytes_tracked(self):
        manager = make_manager()
        host = np.zeros(1024)
        manager.copy_in(host)
        buffer = manager.lookup(host)
        buffer.device[:] = 1.0
        manager.record_device_write(host, (0, 1024))
        manager.eager_copy_out(host, (0, 1024))
        assert manager.bytes_copied_in == 8192
        assert manager.bytes_copied_out == 8192
