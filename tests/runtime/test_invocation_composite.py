"""Integration tests for composite invocation: step sequencing,
intermediates, task-parallel steps, recursion and selector-driven
poly-algorithms."""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.selector import Selector
from repro.hardware.machines import DESKTOP
from repro.lang import (
    Choice,
    CostSpec,
    Pattern,
    Rule,
    Spawn,
    Step,
    SubInvoke,
    Transform,
    make_program,
)
from repro.runtime.executor import run_program


def elementwise(name, fn):
    def body(ctx):
        src, out = ctx.input("In"), ctx.array("Out")
        r0, r1 = ctx.rows
        out[r0:r1] = fn(src[r0:r1])

    return Rule(name=name, reads=("In",), writes=("Out",), body=body,
                cost=CostSpec(flops_per_item=1.0))


def leaf(name, rule):
    return Transform(name=name, inputs=("In",), outputs=("Out",),
                     choices=(Choice(name="only", rule=rule),))


class TestCompositeSequencing:
    def make_chain_program(self):
        double = leaf("Double", elementwise("double", lambda x: 2 * x))
        inc = leaf("Inc", elementwise("inc", lambda x: x + 1))
        top = Transform(
            name="Top", inputs=("In",), outputs=("Out",),
            choices=(
                Choice(
                    name="chain",
                    steps=(
                        Step(transform="Double", bindings={"Out": "Mid"}),
                        Step(transform="Inc", bindings={"In": "Mid"}),
                    ),
                    intermediates={"Mid": lambda shapes, p: shapes["In"]},
                ),
            ),
        )
        return make_program("chain", [top, double, inc], "Top")

    def test_steps_run_in_order(self):
        program = self.make_chain_program()
        compiled = compile_program(program, DESKTOP)
        config = default_configuration(compiled.training_info)
        env = {"In": np.arange(100.0), "Out": np.zeros(100)}
        run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 2 * np.arange(100.0) + 1)

    def test_intermediate_allocated_fresh(self):
        """Two runs must not share intermediate state."""
        program = self.make_chain_program()
        compiled = compile_program(program, DESKTOP)
        config = default_configuration(compiled.training_info)
        for seed in (1, 2):
            env = {"In": np.full(10, float(seed)), "Out": np.zeros(10)}
            run_program(compiled, config, env)
            np.testing.assert_allclose(env["Out"], 2.0 * seed + 1)


class TestParallelSteps:
    def test_task_parallel_steps_both_execute(self):
        left = leaf("Left", elementwise("left", lambda x: x + 10))
        right = leaf("Right", elementwise("right", lambda x: x + 20))
        top = Transform(
            name="Top", inputs=("In",), outputs=("A", "B"),
            choices=(
                Choice(
                    name="par",
                    steps=(
                        Step(transform="Left", bindings={"Out": "A"}),
                        Step(transform="Right", bindings={"Out": "B"}),
                    ),
                    parallel_steps=True,
                ),
            ),
        )
        program = make_program("par", [top, left, right], "Top")
        compiled = compile_program(program, DESKTOP)
        config = default_configuration(compiled.training_info)
        env = {"In": np.ones(50), "A": np.zeros(50), "B": np.zeros(50)}
        run_program(compiled, config, env)
        assert env["A"].sum() == 50 * 11
        assert env["B"].sum() == 50 * 21


class TestRecursion:
    def make_recursive_sum_program(self):
        """Divide-and-conquer reduction: Out[0] = sum(In)."""

        def body(ctx):
            src = ctx.input("In")
            out = ctx.array("Out")
            n = len(src)
            if n <= 4:
                ctx.charge(flops=n)
                out[0] = src.sum()
                return None
            half = n // 2
            left_out = np.zeros(1)
            right_out = np.zeros(1)
            ctx.charge(flops=2)

            def combine(cctx):
                cctx.charge(flops=1)
                out[0] = left_out[0] + right_out[0]
                return None

            return Spawn(
                children=[
                    SubInvoke("RecSum", {"In": src[:half], "Out": left_out}),
                    SubInvoke("RecSum", {"In": src[half:], "Out": right_out}),
                ],
                combine=combine,
            )

        rule = Rule(name="recsum", reads=("In",), writes=("Out",), body=body,
                    pattern=Pattern.RECURSIVE, divisible=False)
        transform = Transform(
            name="RecSum", inputs=("In",), outputs=("Out",),
            choices=(Choice(name="rec", rule=rule),),
            size_of=lambda shapes: shapes["In"][0],
        )
        return make_program("recsum", [transform], "RecSum")

    def test_recursive_reduction_correct(self):
        program = self.make_recursive_sum_program()
        compiled = compile_program(program, DESKTOP)
        config = default_configuration(compiled.training_info)
        data = np.random.default_rng(0).random(1000)
        env = {"In": data, "Out": np.zeros(1)}
        run_program(compiled, config, env)
        assert env["Out"][0] == pytest.approx(data.sum())

    def test_recursion_spawns_stealable_work(self):
        program = self.make_recursive_sum_program()
        compiled = compile_program(program, DESKTOP)
        config = default_configuration(compiled.training_info)
        data = np.ones(4096)
        env = {"In": data, "Out": np.zeros(1)}
        result = run_program(compiled, config, env)
        assert result.stats.steals > 0
        assert env["Out"][0] == 4096


class TestPolyalgorithmDispatch:
    def test_selector_switches_choice_by_size(self):
        """Two choices that write different constants: the selector
        cutoff decides which one runs at each invocation size."""
        small_rule = elementwise("small", lambda x: np.full_like(x, 1.0))
        large_rule = elementwise("large", lambda x: np.full_like(x, 2.0))
        transform = Transform(
            name="Pick", inputs=("In",), outputs=("Out",),
            choices=(
                Choice(name="small", rule=small_rule),
                Choice(name="large", rule=large_rule),
            ),
        )
        program = make_program("pick", [transform], "Pick")
        compiled = compile_program(program, DESKTOP)
        compiled_t = compiled.transform("Pick")
        config = default_configuration(compiled.training_info)
        config.selectors["Pick"] = Selector(
            cutoffs=(100,),
            algorithms=(
                compiled_t.choice_index("small/cpu"),
                compiled_t.choice_index("large/cpu"),
            ),
        )
        env = {"In": np.zeros(50), "Out": np.zeros(50)}
        run_program(compiled, config, env)
        assert env["Out"][0] == 1.0  # below the cutoff

        env = {"In": np.zeros(500), "Out": np.zeros(500)}
        run_program(compiled, config, env)
        assert env["Out"][0] == 2.0  # above the cutoff
