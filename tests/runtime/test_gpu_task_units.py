"""Unit tests of the individual GPU task payloads (Section 4.2)."""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.compiler.data_movement import CopyOutClass
from repro.core.configuration import default_configuration
from repro.errors import RuntimeFault
from repro.hardware.machines import DESKTOP
from repro.runtime.gpu_manager import GpuInvocationRecord
from repro.runtime.gpu_tasks import (
    CopyInPayload,
    CopyOutPayload,
    ExecutePayload,
    PreparePayload,
)
from repro.runtime.scheduler import RuntimeState

from tests.conftest import make_stencil_program


@pytest.fixture
def rt():
    compiled = compile_program(make_stencil_program(5), DESKTOP)
    return RuntimeState(compiled, default_configuration(compiled.training_info))


class TestPrepare:
    def test_allocates_buffers(self, rt):
        record = GpuInvocationRecord()
        host = np.zeros(100)
        result = PreparePayload(record=record, outputs=(host,)).run(rt, 0.0)
        assert rt.memory.lookup(host) is not None
        assert result.duration > 0

    def test_reallocation_cheaper(self, rt):
        record = GpuInvocationRecord()
        host = np.zeros(100)
        first = PreparePayload(record=record, outputs=(host,)).run(rt, 0.0)
        second = PreparePayload(record=record, outputs=(host,)).run(rt, 0.0)
        assert second.duration < first.duration


class TestCopyIn:
    def test_nonblocking_semantics(self, rt):
        """The task completes after the call; the transfer occupies the
        copy engine and gates inputs_ready."""
        record = GpuInvocationRecord()
        host = np.ones(100_000)
        result = CopyInPayload(record=record, host=host).run(rt, 0.0)
        assert result.duration < 1e-5  # just the call
        assert record.inputs_ready > result.duration  # transfer later
        assert rt.gpu.copy_free_at == record.inputs_ready

    def test_dedup_short_circuits(self, rt):
        record = GpuInvocationRecord()
        host = np.ones(1000)
        CopyInPayload(record=record, host=host).run(rt, 0.0)
        ready_before = record.inputs_ready
        result = CopyInPayload(record=record, host=host).run(rt, 1.0)
        assert record.inputs_ready == ready_before  # no new transfer
        assert result.duration < 1e-6

    def test_transfers_serialise_on_copy_engine(self, rt):
        record = GpuInvocationRecord()
        a, b = np.ones(100_000), np.ones(100_000)
        CopyInPayload(record=record, host=a).run(rt, 0.0)
        first_done = rt.gpu.copy_free_at
        CopyInPayload(record=record, host=b).run(rt, 0.0)
        assert rt.gpu.copy_free_at > first_done


class TestExecute:
    def make_execute(self, rt, rows=(0, 100), copy_class=CopyOutClass.MUST_COPY_OUT):
        compiled = rt.compiled
        kernel = next(iter(compiled.kernels.values()))
        host_in = np.ones(108)
        host_out = np.zeros(100)
        env = {"In": host_in, "Out": host_out}
        record = GpuInvocationRecord()
        PreparePayload(record=record, outputs=(host_out,)).run(rt, 0.0)
        CopyInPayload(record=record, host=host_in).run(rt, 0.0)
        cost = kernel.rule.cost.resolve({})
        payload = ExecutePayload(
            record=record,
            kernel=kernel,
            launch=kernel.launch(100, cost, 128),
            cost=cost,
            env=env,
            rows=rows,
            copy_classes={"Out": copy_class},
            params={},
        )
        return payload, record, env

    def test_kernel_waits_for_inputs(self, rt):
        payload, record, _ = self.make_execute(rt)
        payload.run(rt, 0.0)
        assert rt.gpu.compute_free_at >= record.inputs_ready

    def test_must_copy_out_starts_read(self, rt):
        payload, record, env = self.make_execute(rt)
        payload.run(rt, 0.0)
        assert "Out" in record.read_finish
        assert record.read_finish["Out"] > rt.gpu.compute_free_at - 1e-12

    def test_may_copy_out_is_lazy(self, rt):
        payload, record, env = self.make_execute(
            rt, copy_class=CopyOutClass.MAY_COPY_OUT
        )
        payload.run(rt, 0.0)
        assert "Out" not in record.read_finish
        buffer = rt.memory.lookup(env["Out"])
        assert buffer.pending_rows  # device-only result

    def test_compile_time_recorded(self, rt):
        payload, _, _ = self.make_execute(rt)
        payload.run(rt, 0.0)
        assert rt.stats.compile_seconds > 0


class TestCopyOutCompletion:
    def test_ready_read_completes(self, rt):
        record = GpuInvocationRecord()
        record.read_finish["Out"] = 1.0
        result = CopyOutPayload(record=record, matrix_name="Out").run(rt, 2.0)
        assert result.requeue_at is None

    def test_pending_read_requeues(self, rt):
        record = GpuInvocationRecord()
        record.read_finish["Out"] = 5.0
        result = CopyOutPayload(record=record, matrix_name="Out").run(rt, 2.0)
        assert result.requeue_at == 5.0

    def test_missing_read_is_a_fault(self, rt):
        record = GpuInvocationRecord()
        with pytest.raises(RuntimeFault):
            CopyOutPayload(record=record, matrix_name="Out").run(rt, 0.0)
