"""Edge-case tests for the runtime: error paths, odd configurations,
and invariants not covered by the happy-path suites."""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.selector import Selector
from repro.errors import RuntimeFault
from repro.hardware.machines import DESKTOP, SERVER
from repro.lang import Choice, CostSpec, Pattern, Rule, Transform, make_program
from repro.runtime.executor import run_program
from repro.runtime.payload import PayloadResult
from repro.runtime.scheduler import RuntimeState
from repro.runtime.task import Task, TaskKind

from tests.conftest import make_scale_program, scale_env


class TestSelectorClamping:
    def test_out_of_range_selector_index_clamped(self):
        """A configuration from a machine with more exec choices must
        still run (the index is clamped, not crashed)."""
        compiled = compile_program(make_scale_program(2.0), DESKTOP)
        config = default_configuration(compiled.training_info)
        config.selectors["Scale"] = Selector.constant(99)
        env = scale_env(100)
        run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 2.0 * env["In"][:100])


class TestDegenerateSizes:
    def test_single_element(self):
        compiled = compile_program(make_scale_program(2.0), DESKTOP)
        config = default_configuration(compiled.training_info)
        env = {"In": np.array([3.0]), "Out": np.zeros(1)}
        run_program(compiled, config, env)
        assert env["Out"][0] == 6.0

    def test_more_chunks_than_rows(self):
        compiled = compile_program(make_scale_program(2.0), DESKTOP)
        config = default_configuration(compiled.training_info)
        config.tunables["split_Scale"] = 256
        config.tunables["seq_par_cutoff"] = 16
        env = scale_env(20)
        run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 2.0 * env["In"][:20])

    def test_gpu_with_tiny_input(self):
        compiled = compile_program(make_scale_program(2.0), DESKTOP)
        config = default_configuration(compiled.training_info)
        config.selectors["Scale"] = Selector.constant(1)
        env = scale_env(3)
        run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 2.0 * env["In"][:3])


class TestPushRuleErrors:
    def test_admit_non_runnable_rejected(self):
        compiled = compile_program(make_scale_program(), DESKTOP)
        rt = RuntimeState(compiled, default_configuration(compiled.training_info))
        with pytest.raises(RuntimeFault):
            rt.admit(Task("new"), ("worker", 0), 0.0)

    def test_requeue_outside_gpu_rejected(self):
        compiled = compile_program(make_scale_program(), DESKTOP)
        rt = RuntimeState(compiled, default_configuration(compiled.training_info))
        rt.gpu = None
        task = Task("t")
        task.finish_dependency_creation()
        with pytest.raises(RuntimeFault):
            rt._handle_result(task, PayloadResult(requeue_at=1.0), ("worker", 0), 0.0)

    def test_gpu_task_without_device_rejected(self):
        compiled = compile_program(make_scale_program(), DESKTOP)
        rt = RuntimeState(compiled, default_configuration(compiled.training_info))
        rt.gpu = None
        task = Task("g", kind=TaskKind.GPU)
        task.finish_dependency_creation()
        with pytest.raises(RuntimeFault):
            rt.admit(task, ("worker", 0), 0.0)


class TestKernelRuleMisuse:
    def test_kernel_rule_must_not_spawn(self):
        """A data-parallel rule whose body returns a Spawn is a
        programming error on the OpenCL path."""
        from repro.lang.spawn import Spawn, SubInvoke

        def bad_body(ctx):
            return Spawn(children=[], combine=lambda c: None)

        rule = Rule(name="bad", reads=("In",), writes=("Out",), body=bad_body,
                    cost=CostSpec())
        transform = Transform(name="Bad", inputs=("In",), outputs=("Out",),
                              choices=(Choice(name="c", rule=rule),))
        compiled = compile_program(make_program("bad", [transform], "Bad"), DESKTOP)
        config = default_configuration(compiled.training_info)
        config.selectors["Bad"] = Selector.constant(
            compiled.transform("Bad").choice_index("c/opencl")
        )
        with pytest.raises(RuntimeFault):
            run_program(compiled, config, {"In": np.zeros(8), "Out": np.zeros(8)})


class TestIndivisibleOpenCL:
    def test_indivisible_rule_runs_whole_on_gpu(self):
        """divisible=False ignores the ratio: all rows on the device."""

        def body(ctx):
            src, out = ctx.input("In"), ctx.array("Out")
            out[:] = src[: len(out)] * 4.0

        rule = Rule(name="whole", reads=("In",), writes=("Out",), body=body,
                    pattern=Pattern.SEQUENTIAL, divisible=False,
                    cost=CostSpec(flops_per_item=1.0))
        transform = Transform(name="Whole", inputs=("In",), outputs=("Out",),
                              choices=(Choice(name="c", rule=rule),))
        compiled = compile_program(make_program("w", [transform], "Whole"), DESKTOP)
        config = default_configuration(compiled.training_info)
        config.selectors["Whole"] = Selector.constant(
            compiled.transform("Whole").choice_index("c/opencl")
        )
        config.tunables["gpu_ratio_Whole"] = 3  # ignored: indivisible
        env = scale_env(64)
        result = run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 4.0 * env["In"][:64])
        assert result.stats.kernel_launches == 1


class TestWorkerCountOverride:
    def test_worker_override_respected(self):
        compiled = compile_program(make_scale_program(), SERVER)
        config = default_configuration(compiled.training_info)
        rt = RuntimeState(compiled, config, worker_count=2)
        assert len(rt.workers) == 2

    def test_machine_default_worker_count(self):
        compiled = compile_program(make_scale_program(), SERVER)
        config = default_configuration(compiled.training_info)
        rt = RuntimeState(compiled, config)
        assert len(rt.workers) == 16  # Section 6.1


class TestStatsSurface:
    def test_stats_as_dict_complete(self):
        compiled = compile_program(make_scale_program(), DESKTOP)
        config = default_configuration(compiled.training_info)
        result = run_program(compiled, config, scale_env(1000))
        stats = result.stats.as_dict()
        assert stats["tasks_executed"] > 0
        assert set(stats) >= {
            "tasks_executed", "gpu_tasks_executed", "kernel_launches",
            "steals", "failed_steals", "compile_seconds",
        }

    def test_run_result_output_accessor(self):
        compiled = compile_program(make_scale_program(), DESKTOP)
        config = default_configuration(compiled.training_info)
        env = scale_env(10)
        result = run_program(compiled, config, env)
        assert result.output("Out") is env["Out"]
