"""Unit tests for the five-state task model (paper Section 4.1)."""

import pytest

from repro.errors import RuntimeFault
from repro.runtime.task import Task, TaskKind, TaskState, make_barrier


class TestStateMachine:
    def test_new_task_initial_state(self):
        task = Task("t")
        assert task.state is TaskState.NEW
        assert task.dependency_count == 0

    def test_no_dependencies_becomes_runnable(self):
        task = Task("t")
        assert task.finish_dependency_creation()
        assert task.state is TaskState.RUNNABLE

    def test_with_dependencies_becomes_non_runnable(self):
        dep = Task("dep")
        dep.finish_dependency_creation()
        task = Task("t")
        task.depend_on(dep)
        assert not task.finish_dependency_creation()
        assert task.state is TaskState.NON_RUNNABLE

    def test_cannot_add_dependency_after_new(self):
        task = Task("t")
        task.finish_dependency_creation()
        other = Task("o")
        with pytest.raises(RuntimeFault):
            task.depend_on(other)

    def test_cannot_finish_twice(self):
        task = Task("t")
        task.finish_dependency_creation()
        with pytest.raises(RuntimeFault):
            task.finish_dependency_creation()

    def test_complete_releases_dependents(self):
        dep = Task("dep")
        dep.finish_dependency_creation()
        task = Task("t")
        task.depend_on(dep)
        task.finish_dependency_creation()
        ready = dep.complete()
        assert ready == [task]
        assert task.state is TaskState.RUNNABLE
        assert dep.state is TaskState.COMPLETE

    def test_complete_clears_dependents_list(self):
        dep = Task("dep")
        dep.finish_dependency_creation()
        task = Task("t")
        task.depend_on(dep)
        task.finish_dependency_creation()
        dep.complete()
        assert dep.dependents == []

    def test_depending_on_complete_task_is_noop(self):
        """Paper: 'Any subsequent attempt to depend on this task
        results in a no-op.'"""
        done = Task("done")
        done.finish_dependency_creation()
        done.complete()
        task = Task("t")
        assert not task.depend_on(done)
        assert task.finish_dependency_creation()  # still runnable

    def test_multi_dependency_counting(self):
        deps = [Task(f"d{i}") for i in range(3)]
        for dep in deps:
            dep.finish_dependency_creation()
        task = Task("t")
        for dep in deps:
            task.depend_on(dep)
        task.finish_dependency_creation()
        assert task.dependency_count == 3
        assert deps[0].complete() == []
        assert deps[1].complete() == []
        assert deps[2].complete() == [task]

    def test_cannot_complete_non_runnable(self):
        dep = Task("dep")
        dep.finish_dependency_creation()
        task = Task("t")
        task.depend_on(dep)
        task.finish_dependency_creation()
        with pytest.raises(RuntimeFault):
            task.complete()


class TestContinuations:
    def test_continue_transfers_dependents(self):
        """Paper: the dependents list is transferred to the
        continuation task."""
        task = Task("t")
        task.finish_dependency_creation()
        waiter = Task("w")
        waiter.depend_on(task)
        waiter.finish_dependency_creation()

        continuation = Task("cont")
        task.continue_with(continuation)
        assert task.state is TaskState.CONTINUED
        assert waiter in continuation.dependents
        assert task.dependents == []

        continuation.finish_dependency_creation()
        ready = continuation.complete()
        assert ready == [waiter]

    def test_depend_on_continued_follows_chain(self):
        """Paper: subsequent attempts to depend on a continued task
        instead depend on the continuation (recursively)."""
        task = Task("t")
        task.finish_dependency_creation()
        cont1 = Task("c1")
        task.continue_with(cont1)
        cont1.finish_dependency_creation()
        cont2 = Task("c2")
        cont1.continue_with(cont2)
        cont2.finish_dependency_creation()

        waiter = Task("w")
        waiter.depend_on(task)
        assert waiter in cont2.dependents

    def test_cannot_continue_unrun_task(self):
        task = Task("t")
        with pytest.raises(RuntimeFault):
            task.continue_with(Task("c"))

    def test_resolve_continuations_on_live_task(self):
        task = Task("t")
        assert task.resolve_continuations() is task


class TestBarriers:
    def test_barrier_has_no_payload(self):
        barrier = make_barrier("join")
        assert barrier.payload is None
        assert barrier.kind is TaskKind.CPU

    def test_gpu_barrier(self):
        assert make_barrier("join", TaskKind.GPU).kind is TaskKind.GPU


class TestTaskIds:
    def test_ids_unique_and_increasing(self):
        a, b = Task("a"), Task("b")
        assert b.task_id > a.task_id
