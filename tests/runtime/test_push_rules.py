"""Tests pinning the push rules of paper Figure 5 at scheduler level.

* (a) GPU tasks are always pushed to the bottom of the GPU queue;
* (b) a CPU task made runnable by a GPU task goes to the *bottom* of a
  random worker's deque;
* (c) a CPU task made runnable by a CPU task goes to the *top* of the
  executing worker's own deque.
"""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.hardware.machines import DESKTOP
from repro.runtime.scheduler import RuntimeState
from repro.runtime.task import Task, TaskKind

from tests.conftest import make_scale_program


@pytest.fixture
def rt():
    compiled = compile_program(make_scale_program(), DESKTOP)
    return RuntimeState(compiled, default_configuration(compiled.training_info))


def runnable(name, kind=TaskKind.CPU):
    task = Task(name, kind=kind)
    task.finish_dependency_creation()
    return task


class TestFigure5PushRules:
    def test_gpu_task_goes_to_gpu_fifo(self, rt):
        task = runnable("g", TaskKind.GPU)
        rt.admit(task, ("worker", 0), 0.0)
        assert len(rt.gpu.fifo) == 1
        assert rt.gpu.fifo[0] is task

    def test_gpu_task_from_gpu_actor_also_fifo(self, rt):
        task = runnable("g", TaskKind.GPU)
        rt.admit(task, ("gpu", 0), 0.0)
        assert rt.gpu.pop() is task

    def test_cpu_task_from_cpu_actor_goes_to_own_top(self, rt):
        worker = rt.workers[2]
        existing = runnable("existing")
        worker.deque.push_top(existing)
        task = runnable("t")
        rt.admit(task, ("worker", 2), 0.0)
        assert worker.deque.pop_top() is task  # on top (LIFO)
        assert worker.deque.pop_top() is existing

    def test_cpu_task_from_gpu_actor_goes_to_random_bottom(self, rt):
        # Pre-fill every deque so bottom-insertion is observable.
        for worker in rt.workers:
            worker.deque.push_top(runnable(f"pre{worker.index}"))
        task = runnable("from-gpu")
        rt.admit(task, ("gpu", 0), 0.0)
        receiving = [w for w in rt.workers if len(w.deque) == 2]
        assert len(receiving) == 1
        # The GPU-caused task is at the bottom: stolen first.
        assert receiving[0].deque.steal_bottom() is task

    def test_gpu_pushes_use_seeded_randomness(self):
        """The victim worker for GPU-caused pushes is reproducible."""
        def receiving_worker(seed):
            compiled = compile_program(make_scale_program(), DESKTOP)
            state = RuntimeState(
                compiled, default_configuration(compiled.training_info), seed=seed
            )
            task = runnable("t")
            state.admit(task, ("gpu", 0), 0.0)
            return next(w.index for w in state.workers if len(w.deque))

        assert receiving_worker(5) == receiving_worker(5)

    def test_admitting_wakes_dormant_workers(self, rt):
        for worker in rt.workers:
            worker.dormant = True
        rt.admit(runnable("t"), ("worker", 0), 0.0)
        assert any(not w.dormant for w in rt.workers)
