"""Integration tests for the discrete-event scheduler: work stealing,
push rules, determinism and end-to-end execution."""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.selector import Selector
from repro.errors import RuntimeFault
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER
from repro.runtime.executor import run_program
from repro.runtime.scheduler import RuntimeState
from repro.runtime.task import Task, TaskState

from tests.conftest import make_scale_program, make_stencil_program, scale_env


def compile_scale(machine=DESKTOP):
    return compile_program(make_scale_program(3.0), machine)


class TestEndToEnd:
    def test_scale_on_cpu(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        env = scale_env(1000)
        result = run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 3.0 * env["In"][:1000])
        assert result.time_s > 0

    def test_scale_on_opencl(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.selectors["Scale"] = Selector.constant(
            compiled.transform("Scale").choice_index("direct/opencl")
        )
        env = scale_env(1000)
        result = run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 3.0 * env["In"][:1000])
        assert result.stats.kernel_launches == 1

    def test_missing_binding_raises(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        with pytest.raises(RuntimeFault):
            run_program(compiled, config, {"In": np.zeros(10)})

    def test_hybrid_ratio_split_correct(self):
        """Part of the output computed on the GPU, the rest on CPU."""
        compiled = compile_scale()
        for ratio in (1, 4, 7):
            config = default_configuration(compiled.training_info)
            config.selectors["Scale"] = Selector.constant(1)
            config.tunables["gpu_ratio_Scale"] = ratio
            env = scale_env(1000, seed=ratio)
            run_program(compiled, config, env)
            np.testing.assert_allclose(env["Out"], 3.0 * env["In"][:1000])

    def test_ratio_zero_falls_back_to_cpu(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.selectors["Scale"] = Selector.constant(1)
        config.tunables["gpu_ratio_Scale"] = 0
        env = scale_env(100)
        result = run_program(compiled, config, env)
        assert result.stats.kernel_launches == 0
        np.testing.assert_allclose(env["Out"], 3.0 * env["In"][:100])


class TestDeterminism:
    def test_same_seed_same_time(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        times = set()
        for _ in range(3):
            env = scale_env(5000)
            times.add(run_program(compiled, config, env, seed=11).time_s)
        assert len(times) == 1

    def test_different_worker_counts_change_time(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.tunables["split_Scale"] = 8
        env1 = scale_env(200_000)
        t1 = run_program(compiled, config, env1, worker_count=1).time_s
        env4 = scale_env(200_000)
        t4 = run_program(compiled, config, env4, worker_count=4).time_s
        assert t4 < t1


class TestWorkStealing:
    def test_steals_happen_with_many_chunks(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.tunables["split_Scale"] = 64
        config.tunables["seq_par_cutoff"] = 16
        env = scale_env(100_000)
        result = run_program(compiled, config, env)
        assert result.stats.steals > 0

    def test_single_worker_never_steals(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.tunables["split_Scale"] = 16
        env = scale_env(100_000)
        result = run_program(compiled, config, env, worker_count=1)
        assert result.stats.steals == 0

    def test_parallelism_reduces_time(self):
        """More chunks across more workers => shorter virtual time."""
        compiled = compile_scale()
        serial = default_configuration(compiled.training_info)
        serial.tunables["split_Scale"] = 1
        parallel = default_configuration(compiled.training_info)
        parallel.tunables["split_Scale"] = 8
        parallel.tunables["seq_par_cutoff"] = 16
        t_serial = run_program(compiled, serial, scale_env(400_000)).time_s
        t_parallel = run_program(compiled, parallel, scale_env(400_000)).time_s
        assert t_parallel < t_serial


class TestSchedulerInvariants:
    def test_deadlock_detected(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        rt = RuntimeState(compiled, config)
        # A task that depends on a never-completed task: the agenda
        # drains with live tasks remaining.
        ghost = Task("ghost")
        ghost.finish_dependency_creation()
        stuck = Task("stuck")
        stuck.depend_on(ghost)
        stuck.finish_dependency_creation()
        rt._live_tasks += 1  # account `stuck` as live
        with pytest.raises(RuntimeFault):
            rt.run_to_completion()

    def test_active_workers_floor_one(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        rt = RuntimeState(compiled, config)
        assert rt.active_workers() == 1

    def test_gpu_state_absent_without_device(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        rt = RuntimeState(compiled, config)
        assert rt.gpu is not None  # Desktop has a GPU


class TestCompileTimeAccounting:
    def test_compile_time_excluded_by_default(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.selectors["Scale"] = Selector.constant(1)
        env = scale_env(1000)
        result = run_program(compiled, config, env)
        assert result.stats.compile_seconds > 1.0
        assert result.time_s < 1.0

    def test_compile_time_charged_when_requested(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.selectors["Scale"] = Selector.constant(1)
        env = scale_env(1000)
        result = run_program(compiled, config, env, charge_compile_in_run=True)
        assert result.time_s > 1.0

    def test_warm_jit_shared_across_runs(self):
        compiled = compile_scale()
        config = default_configuration(compiled.training_info)
        config.selectors["Scale"] = Selector.constant(1)
        jit = DESKTOP.fresh_jit()
        run_program(compiled, config, scale_env(100), jit=jit)
        before = jit.total_compile_time_s
        run_program(compiled, config, scale_env(100), jit=jit)
        # Second run only pays the (cheaper) architecture JIT phase.
        delta = jit.total_compile_time_s - before
        assert 0 < delta < before
