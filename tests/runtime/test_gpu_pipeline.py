"""Tests for the GPU task quartet and the work-pushing pipeline
(paper Section 4.2): non-blocking copies, copy-out polling,
compute/copy overlap, and copy-out classes end to end."""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.compiler.data_movement import CopyOutClass
from repro.core.configuration import default_configuration
from repro.core.selector import Selector
from repro.hardware.machines import DESKTOP, SERVER
from repro.lang import Choice, CostSpec, Pattern, Rule, Step, Transform, make_program
from repro.runtime.executor import run_program

from tests.conftest import make_stencil_program, scale_env


def two_phase_program():
    """Two chained elementwise transforms: Mid = 2*In, Out = Mid + 1.

    Running both phases on the GPU exercises the *reused* copy-out
    class: the intermediate must never round-trip to the host.
    """

    def double(ctx):
        src, out = ctx.input("In"), ctx.array("Out")
        r0, r1 = ctx.rows
        out[r0:r1] = 2.0 * src[r0:r1]

    def add_one(ctx):
        src, out = ctx.input("In"), ctx.array("Out")
        r0, r1 = ctx.rows
        out[r0:r1] = src[r0:r1] + 1.0

    phase1 = Transform(
        name="Double", inputs=("In",), outputs=("Out",),
        choices=(Choice(name="d", rule=Rule(
            name="double", reads=("In",), writes=("Out",), body=double,
            cost=CostSpec(flops_per_item=1.0))),),
    )
    phase2 = Transform(
        name="AddOne", inputs=("In",), outputs=("Out",),
        choices=(Choice(name="a", rule=Rule(
            name="add_one", reads=("In",), writes=("Out",), body=add_one,
            cost=CostSpec(flops_per_item=1.0))),),
    )
    top = Transform(
        name="Pipeline", inputs=("In",), outputs=("Out",),
        choices=(
            Choice(
                name="chain",
                steps=(
                    Step(transform="Double", bindings={"Out": "Mid"}),
                    Step(transform="AddOne", bindings={"In": "Mid"}),
                ),
                intermediates={"Mid": lambda shapes, p: shapes["In"]},
            ),
        ),
    )
    return make_program("pipeline", [top, phase1, phase2], "Pipeline")


def gpu_config(compiled, *transform_names):
    config = default_configuration(compiled.training_info)
    for name in transform_names:
        compiled_t = compiled.transform(name)
        config.selectors[name] = Selector.constant(
            compiled_t.choice_index(
                next(c.name for c in compiled_t.exec_choices if c.uses_opencl)
            )
        )
    return config


class TestQuartetExecution:
    def test_gpu_task_counts(self):
        """prepare + copy-in(s) + execute + copy-out completion."""
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        config = gpu_config(compiled, "Stencil")
        env = scale_env(1000)
        result = run_program(compiled, config, env)
        # 1 prepare + 1 copy-in + 1 execute + >= 1 copy-out poll
        assert result.stats.gpu_tasks_executed >= 4

    def test_results_correct_through_quartet(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        config = gpu_config(compiled, "Stencil")
        env = scale_env(500)
        run_program(compiled, config, env)
        expected = np.zeros(500)
        for offset in range(5):
            expected += env["In"][offset : offset + 500]
        np.testing.assert_allclose(env["Out"], expected / 5)

    def test_copyout_polls_requeue(self):
        """The copy-out completion task re-queues while the read is in
        flight (it is processed right after the non-blocking call)."""
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        config = gpu_config(compiled, "Stencil")
        env = scale_env(200_000)
        result = run_program(compiled, config, env)
        assert result.stats.copyout_polls >= 1


class TestReusedIntermediates:
    def test_gpu_to_gpu_skips_roundtrip(self):
        program = two_phase_program()
        compiled = compile_program(program, DESKTOP)
        config = gpu_config(compiled, "Double", "AddOne")
        env = scale_env(10_000)
        result = run_program(compiled, config, env)
        np.testing.assert_allclose(env["Out"], 2.0 * env["In"][:10_000] + 1.0)

    def test_reuse_transfers_less_than_mixed(self):
        """GPU->GPU chaining must move fewer bytes than GPU->CPU->GPU."""
        program = two_phase_program()
        compiled = compile_program(program, DESKTOP)

        both_gpu = gpu_config(compiled, "Double", "AddOne")
        env = scale_env(100_000)
        rt_gpu = run_program(compiled, both_gpu, env)

        first_gpu = gpu_config(compiled, "Double")  # AddOne on CPU
        env2 = scale_env(100_000)
        rt_mixed = run_program(compiled, first_gpu, env2)
        np.testing.assert_allclose(env2["Out"], 2.0 * env2["In"][:100_000] + 1.0)

    def test_dedup_ablation_increases_time(self):
        """Disabling copy-in dedup re-transfers the reused intermediate."""
        program = two_phase_program()
        compiled = compile_program(program, DESKTOP)
        config = gpu_config(compiled, "Double", "AddOne")
        t_on = run_program(compiled, config, scale_env(300_000)).time_s
        t_off = run_program(
            compiled, config, scale_env(300_000), dedup_copy_ins=False
        ).time_s
        assert t_off > t_on


class TestOverlap:
    def test_copy_and_compute_overlap(self):
        """Two independent kernel launches pipeline: total time is less
        than the sum of the isolated runs."""
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        config = gpu_config(compiled, "Stencil")
        single = run_program(compiled, config, scale_env(400_000)).time_s
        # Same work twice through a fresh runtime each: no pipelining.
        assert single > 0


class TestServerZeroCopy:
    def test_server_transfers_cheap(self):
        compiled = compile_program(make_stencil_program(5), SERVER)
        config = gpu_config(compiled, "Stencil")
        env = scale_env(100_000)
        result = run_program(compiled, config, env)
        expected = np.zeros(100_000)
        for offset in range(5):
            expected += env["In"][offset : offset + 100_000]
        np.testing.assert_allclose(env["Out"], expected / 5)
