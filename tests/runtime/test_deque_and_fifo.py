"""Unit tests for the THE-protocol deque and the GPU FIFO."""

import pytest

from repro.errors import RuntimeFault
from repro.hardware.machines import DESKTOP
from repro.runtime.deque import WorkDeque
from repro.runtime.gpu_manager import GpuState
from repro.runtime.task import Task, TaskKind


def runnable(name="t", kind=TaskKind.CPU) -> Task:
    task = Task(name, kind=kind)
    task.finish_dependency_creation()
    return task


class TestWorkDeque:
    def test_owner_lifo(self):
        deque = WorkDeque(0)
        a, b = runnable("a"), runnable("b")
        deque.push_top(a)
        deque.push_top(b)
        assert deque.pop_top() is b
        assert deque.pop_top() is a
        assert deque.pop_top() is None

    def test_thief_steals_oldest(self):
        deque = WorkDeque(0)
        a, b = runnable("a"), runnable("b")
        deque.push_top(a)
        deque.push_top(b)
        assert deque.steal_bottom() is a

    def test_gpu_manager_pushes_bottom(self):
        """Figure 5(b): GPU-caused tasks go to the bottom."""
        deque = WorkDeque(0)
        a, b = runnable("a"), runnable("b")
        deque.push_top(a)
        deque.push_bottom(b)
        assert deque.pop_top() is a
        assert deque.pop_top() is b

    def test_rejects_gpu_tasks(self):
        deque = WorkDeque(0)
        with pytest.raises(RuntimeFault):
            deque.push_top(runnable(kind=TaskKind.GPU))
        with pytest.raises(RuntimeFault):
            deque.push_bottom(runnable(kind=TaskKind.GPU))

    def test_rejects_non_runnable(self):
        deque = WorkDeque(0)
        with pytest.raises(RuntimeFault):
            deque.push_top(Task("new"))

    def test_counters(self):
        deque = WorkDeque(0)
        deque.push_top(runnable())
        deque.steal_bottom()
        assert deque.pushes == 1
        assert deque.steals_suffered == 1

    def test_len(self):
        deque = WorkDeque(0)
        assert len(deque) == 0
        deque.push_top(runnable())
        assert len(deque) == 1


class TestGpuFifo:
    def make_gpu(self):
        return GpuState(DESKTOP.opencl_device)

    def test_fifo_order(self):
        gpu = self.make_gpu()
        a, b = runnable("a", TaskKind.GPU), runnable("b", TaskKind.GPU)
        gpu.push(a)
        gpu.push(b)
        assert gpu.pop() is a
        assert gpu.pop() is b
        assert gpu.pop() is None

    def test_rejects_cpu_tasks(self):
        gpu = self.make_gpu()
        with pytest.raises(RuntimeFault):
            gpu.push(runnable(kind=TaskKind.CPU))

    def test_rejects_non_runnable(self):
        gpu = self.make_gpu()
        with pytest.raises(RuntimeFault):
            gpu.push(Task("new", kind=TaskKind.GPU))

    def test_requeue_appends(self):
        gpu = self.make_gpu()
        a, b = runnable("a", TaskKind.GPU), runnable("b", TaskKind.GPU)
        gpu.push(a)
        gpu.push(b)
        first = gpu.pop()
        gpu.requeue(first)
        assert gpu.pop() is b
        assert gpu.pop() is a

    def test_timelines_start_at_zero(self):
        gpu = self.make_gpu()
        assert gpu.compute_free_at == 0.0
        assert gpu.copy_free_at == 0.0
