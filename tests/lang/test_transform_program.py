"""Unit tests for transforms, choices, steps, spawns and programs."""

import numpy as np
import pytest

from repro.errors import LanguageError
from repro.lang import (
    Choice,
    Pattern,
    Rule,
    Spawn,
    Step,
    SubInvoke,
    Transform,
    make_program,
)


def noop(ctx):
    return None


def leaf_rule(reads=("In",), writes=("Out",)):
    return Rule(name="r", reads=reads, writes=writes, body=noop)


def leaf_transform(name="T", inputs=("In",), outputs=("Out",)):
    return Transform(
        name=name, inputs=inputs, outputs=outputs,
        choices=(Choice(name="only", rule=leaf_rule(inputs, outputs)),),
    )


class TestChoiceValidation:
    def test_choice_needs_rule_or_steps(self):
        with pytest.raises(LanguageError):
            Choice(name="bad")

    def test_choice_cannot_have_both(self):
        with pytest.raises(LanguageError):
            Choice(name="bad", rule=leaf_rule(), steps=(Step(transform="X"),))

    def test_leaf_flag(self):
        assert Choice(name="leaf", rule=leaf_rule()).is_leaf
        assert not Choice(name="comp", steps=(Step(transform="X"),)).is_leaf

    def test_step_requires_transform(self):
        with pytest.raises(LanguageError):
            Step(transform="")


class TestTransformValidation:
    def test_requires_outputs(self):
        with pytest.raises(LanguageError):
            Transform(name="T", inputs=("In",), outputs=(),
                      choices=(Choice(name="c", rule=leaf_rule()),))

    def test_requires_choices(self):
        with pytest.raises(LanguageError):
            Transform(name="T", inputs=("In",), outputs=("Out",), choices=())

    def test_duplicate_choice_names_rejected(self):
        with pytest.raises(LanguageError):
            Transform(
                name="T", inputs=("In",), outputs=("Out",),
                choices=(
                    Choice(name="same", rule=leaf_rule()),
                    Choice(name="same", rule=leaf_rule()),
                ),
            )

    def test_rule_touching_unknown_matrix_rejected(self):
        bad_rule = Rule(name="r", reads=("Mystery",), writes=("Out",), body=noop)
        with pytest.raises(LanguageError):
            Transform(
                name="T", inputs=("In",), outputs=("Out",),
                choices=(Choice(name="c", rule=bad_rule),),
            )

    def test_rule_may_touch_intermediates(self):
        rule = Rule(name="r", reads=("buf",), writes=("Out",), body=noop)
        transform = Transform(
            name="T", inputs=("In",), outputs=("Out",),
            choices=(
                Choice(name="c", rule=rule,
                       intermediates={"buf": lambda s, p: s["In"]}),
            ),
        )
        assert transform.choice_named("c").is_leaf

    def test_choice_named_missing(self):
        transform = leaf_transform()
        with pytest.raises(KeyError):
            transform.choice_named("nope")


class TestTransformSize:
    def test_default_size_is_output_elements(self):
        transform = leaf_transform()
        assert transform.default_size({"Out": (4, 8)}) == 32

    def test_custom_size_of(self):
        transform = Transform(
            name="T", inputs=("In",), outputs=("Out",),
            choices=(Choice(name="c", rule=leaf_rule()),),
            size_of=lambda shapes: shapes["In"][0],
        )
        assert transform.default_size({"In": (7,), "Out": (3,)}) == 7

    def test_missing_shape_raises(self):
        transform = leaf_transform()
        with pytest.raises(LanguageError):
            transform.default_size({"In": (4,)})


class TestSpawnDescriptors:
    def test_subinvoke_requires_arrays(self):
        with pytest.raises(LanguageError):
            SubInvoke("T", {"In": [1, 2, 3]})

    def test_subinvoke_requires_transform(self):
        with pytest.raises(LanguageError):
            SubInvoke("", {"In": np.zeros(3)})

    def test_spawn_requires_children_or_combine(self):
        with pytest.raises(LanguageError):
            Spawn(children=[])

    def test_combine_only_spawn(self):
        spawn = Spawn(children=[], combine=lambda ctx: None)
        assert spawn.combine is not None


class TestProgram:
    def test_entry_must_exist(self):
        with pytest.raises(LanguageError):
            make_program("p", [leaf_transform("A")], "B")

    def test_steps_must_resolve(self):
        top = Transform(
            name="Top", inputs=("In",), outputs=("Out",),
            choices=(Choice(name="c", steps=(Step(transform="Ghost"),)),),
        )
        with pytest.raises(LanguageError):
            make_program("p", [top], "Top")

    def test_duplicate_transform_names_rejected(self):
        with pytest.raises(LanguageError):
            make_program("p", [leaf_transform("A"), leaf_transform("A")], "A")

    def test_iter_transforms_sorted(self):
        program = make_program(
            "p", [leaf_transform("B"), leaf_transform("A")], "A"
        )
        names = [t.name for t in program.iter_transforms()]
        assert names == ["A", "B"]

    def test_transform_lookup_error(self):
        program = make_program("p", [leaf_transform("A")], "A")
        with pytest.raises(LanguageError):
            program.transform("Z")

    def test_default_params_stored(self):
        program = make_program("p", [leaf_transform("A")], "A", kw=7.0)
        assert program.default_params["kw"] == 7.0
