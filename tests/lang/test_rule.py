"""Unit tests for rules, cost specs and rule contexts."""

import numpy as np
import pytest

from repro.errors import LanguageError
from repro.lang.rule import CostSpec, Pattern, Rule, RuleContext


def noop(ctx):
    return None


class TestRuleValidation:
    def test_requires_name(self):
        with pytest.raises(LanguageError):
            Rule(name="", reads=("A",), writes=("B",), body=noop)

    def test_requires_writes(self):
        with pytest.raises(LanguageError):
            Rule(name="r", reads=("A",), writes=(), body=noop)

    def test_requires_callable_body(self):
        with pytest.raises(LanguageError):
            Rule(name="r", reads=("A",), writes=("B",), body="not-callable")

    def test_pattern_opencl_candidates(self):
        dp = Rule(name="r", reads=(), writes=("B",), body=noop,
                  pattern=Pattern.DATA_PARALLEL)
        seq = Rule(name="r", reads=(), writes=("B",), body=noop,
                   pattern=Pattern.SEQUENTIAL)
        wave = Rule(name="r", reads=(), writes=("B",), body=noop,
                    pattern=Pattern.WAVEFRONT)
        rec = Rule(name="r", reads=(), writes=("B",), body=noop,
                   pattern=Pattern.RECURSIVE)
        assert dp.is_opencl_candidate_pattern
        assert seq.is_opencl_candidate_pattern
        assert not wave.is_opencl_candidate_pattern
        assert not rec.is_opencl_candidate_pattern


class TestCostSpec:
    def test_constant_fields_resolve(self):
        cost = CostSpec(flops_per_item=3.0, bytes_read_per_item=16.0,
                        bytes_written_per_item=8.0, bounding_box=5)
        resolved = cost.resolve({})
        assert resolved.flops_per_item == 3.0
        assert resolved.bounding_box == 5

    def test_callable_fields_resolve_against_params(self):
        cost = CostSpec(
            flops_per_item=lambda p: 2.0 * p["kw"] ** 2,
            bounding_box=lambda p: int(p["kw"]) ** 2,
        )
        resolved = cost.resolve({"kw": 3})
        assert resolved.flops_per_item == 18.0
        assert resolved.bounding_box == 9

    def test_non_numeric_constant_rejected(self):
        cost = CostSpec(flops_per_item="many")
        with pytest.raises(LanguageError):
            cost.resolve({})

    def test_kernel_launches_floor_one(self):
        cost = CostSpec(kernel_launches=lambda p: 0.2)
        assert cost.resolve({}).kernel_launches == 1

    def test_cpu_flops_override(self):
        cost = CostSpec(flops_per_item=10.0, cpu_flops_per_item=40.0)
        resolved = cost.resolve({})
        assert resolved.effective_cpu_flops_per_item == 40.0

    def test_cpu_flops_defaults_to_gpu_flops(self):
        resolved = CostSpec(flops_per_item=10.0).resolve({})
        assert resolved.effective_cpu_flops_per_item == 10.0

    def test_strided_flag_propagates(self):
        assert CostSpec(strided_access=True).resolve({}).strided_access


class TestRuleContext:
    def make_ctx(self, n=8):
        env = {"In": np.arange(n, dtype=float), "Out": np.zeros(n)}
        return RuleContext(env, {"kw": 3}, rows=(2, 5), tunables={"t": 7})

    def test_array_access(self):
        ctx = self.make_ctx()
        assert ctx.array("In")[3] == 3.0

    def test_unknown_matrix_raises(self):
        ctx = self.make_ctx()
        with pytest.raises(LanguageError):
            ctx.array("Nope")

    def test_output_rows_view(self):
        ctx = self.make_ctx()
        view = ctx.output_rows("Out")
        view[:] = 1.0
        assert ctx.array("Out")[2:5].sum() == 3.0
        assert ctx.array("Out")[:2].sum() == 0.0

    def test_tunable_lookup_with_default(self):
        ctx = self.make_ctx()
        assert ctx.tunable("t") == 7
        assert ctx.tunable("missing", 42) == 42

    def test_charge_accumulates(self):
        ctx = self.make_ctx()
        ctx.charge(flops=10, mem_bytes=20)
        ctx.charge(flops=5, sequential=True)
        flops, mem, seq = ctx.charged
        assert flops == 15
        assert mem == 20
        assert seq

    def test_negative_charge_rejected(self):
        ctx = self.make_ctx()
        with pytest.raises(LanguageError):
            ctx.charge(flops=-1)

    def test_params_copied(self):
        ctx = self.make_ctx()
        ctx.params["kw"] = 99
        assert self.make_ctx().params["kw"] == 3
