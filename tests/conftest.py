"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from repro.core.result_cache import CACHE_DIR_ENV

# Point the cross-session evaluation cache at a repo-local directory
# (unless the caller already chose one), so consecutive pytest runs
# skip re-simulating identical candidate evaluations.  Entries are
# keyed by a content fingerprint of the compiled program and machine,
# so stale entries miss instead of corrupting results; `rm -rf` of the
# directory is always safe.
os.environ.setdefault(
    CACHE_DIR_ENV,
    str(pathlib.Path(__file__).resolve().parent.parent / ".pytest_repro_cache"),
)

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER
from repro.lang import Choice, CostSpec, Pattern, Rule, Transform, make_program


def scale_rule(factor: float = 2.0) -> Rule:
    """A simple data-parallel rule: Out = factor * In."""

    def body(ctx):
        src = ctx.input("In")
        out = ctx.array("Out")
        r0, r1 = ctx.rows
        out[r0:r1] = factor * src[r0:r1]

    return Rule(
        name="scale",
        reads=("In",),
        writes=("Out",),
        body=body,
        pattern=Pattern.DATA_PARALLEL,
        # Compute-bound on every machine so parallelism is visible in
        # the virtual times (bandwidth-bound kernels share the bus and
        # deliberately do not scale with cores).
        cost=CostSpec(
            flops_per_item=50.0, bytes_read_per_item=8.0, bytes_written_per_item=8.0
        ),
    )


def stencil_rule(width: int = 5) -> Rule:
    """A 1-D stencil rule with a bounding box (local-memory eligible)."""

    def body(ctx):
        src = ctx.input("In")
        out = ctx.array("Out")
        r0, r1 = ctx.rows
        acc = np.zeros_like(out[r0:r1])
        for offset in range(width):
            acc += src[r0 + offset : r1 + offset]
        out[r0:r1] = acc / width

    return Rule(
        name="stencil",
        reads=("In",),
        writes=("Out",),
        body=body,
        pattern=Pattern.DATA_PARALLEL,
        cost=CostSpec(
            flops_per_item=float(2 * width),
            bytes_read_per_item=float(8 * width),
            bytes_written_per_item=8.0,
            bounding_box=width,
        ),
    )


def make_scale_program(factor: float = 2.0):
    """One-transform program computing Out = factor * In."""
    transform = Transform(
        name="Scale",
        inputs=("In",),
        outputs=("Out",),
        choices=(Choice(name="direct", rule=scale_rule(factor)),),
    )
    return make_program("scale-program", [transform], "Scale")


def make_stencil_program(width: int = 5):
    """One-transform stencil program (generates a local-mem variant)."""
    transform = Transform(
        name="Stencil",
        inputs=("In",),
        outputs=("Out",),
        choices=(Choice(name="direct", rule=stencil_rule(width)),),
    )
    return make_program("stencil-program", [transform], "Stencil")


def scale_env(n: int, seed: int = 0):
    """Environment for the scale/stencil programs."""
    rng = np.random.default_rng(seed)
    return {"In": rng.random(n + 8), "Out": np.zeros(n)}


@pytest.fixture(scope="session")
def desktop():
    return DESKTOP


@pytest.fixture(scope="session")
def server():
    return SERVER


@pytest.fixture(scope="session")
def laptop():
    return LAPTOP


@pytest.fixture(params=["Desktop", "Server", "Laptop"])
def any_machine(request):
    return {"Desktop": DESKTOP, "Server": SERVER, "Laptop": LAPTOP}[request.param]


# Compiled programs are read-only during execution (runs mutate only
# the environment and per-run state), so one compile per session is
# shared by every test.
@pytest.fixture(scope="session")
def compiled_scale(desktop):
    return compile_program(make_scale_program(), desktop)


@pytest.fixture(scope="session")
def compiled_stencil(desktop):
    return compile_program(make_stencil_program(), desktop)


@pytest.fixture
def default_config(compiled_scale):
    # Function-scoped on purpose: tests mutate the configuration.
    return default_configuration(compiled_scale.training_info)
