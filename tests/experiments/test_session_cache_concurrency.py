"""The runner's session cache under concurrent batch callers.

Multiple overlapping ``Session.run_batch`` calls may race on the same
(benchmark, machine, seed) keys; the per-key single-flight locks must
collapse all of them onto exactly one ``_tune_one`` run per key, with
every caller receiving the same session object.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.api import Session, TunerConfig
from repro.experiments import runner
from repro.experiments.runner import clear_sessions
from repro.hardware.machines import DESKTOP, SERVER

PAIRS = [("Strassen", DESKTOP), ("Strassen", SERVER)]


@pytest.fixture(autouse=True)
def fresh_session_cache(monkeypatch):
    # Pin the in-tuner backend: these tests measure session-cache
    # behaviour, not evaluator choice, and must not fork process pools
    # from tune_many's worker threads under a process-backend env.
    monkeypatch.delenv("REPRO_TUNER_BACKEND", raising=False)
    clear_sessions()
    yield
    clear_sessions()


@pytest.fixture()
def counted_tune_one(monkeypatch):
    """Wrap ``_tune_one`` with a per-key call counter."""
    counts: Counter = Counter()
    lock = threading.Lock()
    real = runner._tune_one

    def counting(name, machine, seed, config, **kwargs):
        with lock:
            counts[(name, machine.codename, seed)] += 1
        return real(name, machine, seed, config, **kwargs)

    monkeypatch.setattr(runner, "_tune_one", counting)
    return counts


def test_concurrent_tune_many_callers_single_flight(counted_tune_one):
    """Three racing tune_many batches over the same pairs: exactly one
    _tune_one per key, identical session objects everywhere."""
    caller_results = []
    results_lock = threading.Lock()
    barrier = threading.Barrier(3)

    def caller():
        barrier.wait()
        with Session(
            TunerConfig.from_env(tune_many_workers=2, backend="thread")
        ) as api_session:
            sessions = api_session.run_batch(PAIRS)
        with results_lock:
            caller_results.append(sessions)

    threads = [threading.Thread(target=caller) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(caller_results) == 3
    for name, machine in PAIRS:
        key = (name, machine.codename, runner.DEFAULT_SEED)
        assert counted_tune_one[key] == 1, (
            f"{key} tuned {counted_tune_one[key]} times; single-flight "
            "must collapse concurrent callers onto one run"
        )
        first = caller_results[0][(name, machine.codename)]
        assert all(
            sessions[(name, machine.codename)] is first
            for sessions in caller_results
        )


def test_run_batch_then_tune_reuses_the_run(counted_tune_one):
    """A direct Session.tune call after run_batch is a pure cache hit."""
    with Session(
        TunerConfig.from_env(tune_many_workers=2, backend="thread")
    ) as api_session:
        sessions = api_session.run_batch(PAIRS)
        for name, machine in PAIRS:
            assert (
                api_session.tune(name, machine)
                is sessions[(name, machine.codename)]
            )
            assert counted_tune_one[
                (name, machine.codename, runner.DEFAULT_SEED)
            ] == 1


def test_concurrent_process_batches_single_flight(
    monkeypatch, counted_tune_one
):
    """Two racing process-sharded batches over the same pairs must
    partition the keys between themselves: each key is shipped to (or
    tuned for) exactly one caller, never both."""
    from concurrent.futures import ProcessPoolExecutor

    submitted = []
    submitted_lock = threading.Lock()

    class RecordingPool(ProcessPoolExecutor):
        def submit(self, fn, *args, **kwargs):
            if fn is runner._tune_shard:
                with submitted_lock:
                    submitted.extend(args[0])
            return super().submit(fn, *args, **kwargs)

    monkeypatch.setattr(runner, "ProcessPoolExecutor", RecordingPool)

    outcome = {}
    outcome_lock = threading.Lock()
    barrier = threading.Barrier(2)

    def caller(tag):
        barrier.wait()
        with Session(
            TunerConfig.from_env(tune_many_workers=2, backend="process")
        ) as api_session:
            sessions = api_session.run_batch(PAIRS)
        with outcome_lock:
            outcome[tag] = sessions

    threads = [threading.Thread(target=caller, args=(tag,)) for tag in "ab"]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for name, machine in PAIRS:
        key = (name, machine.codename)
        shipped = submitted.count(key)
        tuned_locally = counted_tune_one[(*key, runner.DEFAULT_SEED)]
        assert shipped + tuned_locally == 1, (
            f"{key}: shipped to {shipped} shard(s), tuned locally "
            f"{tuned_locally} time(s); single-flight requires exactly one"
        )
        assert outcome["a"][key] is outcome["b"][key]


def test_mixed_batches_share_overlapping_keys(counted_tune_one):
    """Two concurrent batches overlapping on one pair tune it once."""
    batch_a = PAIRS
    batch_b = [PAIRS[0]]  # overlaps on (Strassen, Desktop)
    outcome = {}
    barrier = threading.Barrier(2)

    def run(tag, batch):
        barrier.wait()
        with Session(
            TunerConfig.from_env(tune_many_workers=2, backend="thread")
        ) as api_session:
            outcome[tag] = api_session.run_batch(batch)

    threads = [
        threading.Thread(target=run, args=("a", batch_a)),
        threading.Thread(target=run, args=("b", batch_b)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    shared_key = ("Strassen", "Desktop")
    assert counted_tune_one[(*shared_key, runner.DEFAULT_SEED)] == 1
    assert outcome["a"][shared_key] is outcome["b"][shared_key]
