"""Tests for the experiment runner's session cache, the Figure 6
description helpers and the CLI entry point."""

import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.selector import Selector
from repro.experiments.fig6_configs import (
    describe_choice_at,
    describe_polyalgorithm,
)
from repro.api import Session, TunerConfig
from repro.experiments.runner import ExperimentSettings, clear_sessions
from repro.hardware.machines import DESKTOP

from tests.conftest import make_stencil_program


class TestSettings:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        monkeypatch.delenv("REPRO_SEED", raising=False)
        settings = ExperimentSettings.from_environment()
        assert not settings.full_scale
        assert settings.seed == 3

    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        monkeypatch.setenv("REPRO_SEED", "7")
        settings = ExperimentSettings.from_environment()
        assert settings.full_scale
        assert settings.seed == 7

    def test_eval_size_scaling(self):
        from repro.apps.registry import benchmark
        spec = benchmark("SeparableConv.")
        assert ExperimentSettings(full_scale=True).eval_size(spec) == 3520
        assert ExperimentSettings(full_scale=False).eval_size(spec) == 1024


class TestSessionCache:
    def test_sessions_cached_per_key(self):
        clear_sessions()
        with Session(TunerConfig.from_env()) as api_session:
            first = api_session.tune("Black-Sholes", DESKTOP, seed=41)
            second = api_session.tune("Black-Sholes", DESKTOP, seed=41)
            assert first is second
            different = api_session.tune("Black-Sholes", DESKTOP, seed=42)
            assert different is not first
        clear_sessions()

    def test_session_carries_compiled_program(self):
        clear_sessions()
        with Session(TunerConfig.from_env()) as api_session:
            tuned = api_session.tune("Black-Sholes", DESKTOP, seed=41)
        assert tuned.compiled.machine is DESKTOP
        assert tuned.report.best.label == "Desktop Config"
        clear_sessions()


class TestDescriptions:
    @pytest.fixture
    def compiled(self):
        return compile_program(make_stencil_program(5), DESKTOP)

    def test_describe_constant_choice(self, compiled):
        config = default_configuration(compiled.training_info)
        text = describe_choice_at(compiled, config, "Stencil", 1000)
        assert text == "direct/cpu"

    def test_describe_opencl_choice_includes_tunables(self, compiled):
        config = default_configuration(compiled.training_info)
        config.selectors["Stencil"] = Selector.constant(
            compiled.transform("Stencil").choice_index("direct/opencl")
        )
        config.tunables["gpu_ratio_Stencil"] = 6
        text = describe_choice_at(compiled, config, "Stencil", 1000)
        assert "direct/opencl" in text
        assert "gpu 6/8" in text

    def test_describe_polyalgorithm_chain(self, compiled):
        config = default_configuration(compiled.training_info)
        config.selectors["Stencil"] = Selector(
            cutoffs=(256, 65536),
            algorithms=(0, 1, 2),
        )
        text = describe_polyalgorithm(compiled, config, "Stencil", 10**6)
        assert "< 256: direct/cpu" in text
        assert "< 65536: direct/opencl" in text
        assert ">= 65536: direct/opencl_local" in text

    def test_describe_polyalgorithm_constant_falls_back(self, compiled):
        config = default_configuration(compiled.training_info)
        text = describe_polyalgorithm(compiled, config, "Stencil", 10**6)
        assert text == "direct/cpu"


class TestCli:
    def test_fig9_artefact(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C2070" in out

    def test_unknown_artefact(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig99"]) == 2

    def test_bad_backend_flag_is_a_usage_error(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--backend=bogus", "fig9"]) == 2
        assert "unknown backend" in capsys.readouterr().out

    def test_config_subcommand_reports_provenance(self, monkeypatch, capsys):
        from repro.experiments.__main__ import main
        monkeypatch.setenv("REPRO_TUNER_STRATEGY", "bandit")
        assert main(["config", "--backend=process"]) == 0
        out = capsys.readouterr().out
        assert "bandit" in out
        assert "environment (REPRO_TUNER_STRATEGY)" in out
        assert "command-line flag" in out
        # The CLI defaults progress on without claiming a source.
        assert "progress" in out

    def test_quiet_flag_beats_progress_env(self, monkeypatch, capsys):
        """Regression: explicit CLI choice wins over the environment."""
        from repro.experiments.__main__ import main
        monkeypatch.setenv("REPRO_TUNER_PROGRESS", "1")
        assert main(["config", "--quiet"]) == 0
        out = capsys.readouterr().out
        progress_line = next(
            line for line in out.splitlines()
            if line.strip().startswith("progress")
        )
        assert "False" in progress_line
        assert "command-line flag" in progress_line
