"""Batch-level checkpoint/resume: a killed ``Session.run_batch``
must resume to byte-identical reports on every backend.

The kill is simulated by making candidate evaluation raise after a
fixed number of commits — past the driver's checkpoint interval, so a
partial session state is on disk.  The resumed batch runs under each
session backend (``serial``, ``thread``, ``process``) against the same
``REPRO_CACHE_DIR``; its final reports must match an uninterrupted
baseline field for field (``computed_evaluations`` excepted — resuming
legitimately changes how much physical simulation happened).
"""

from __future__ import annotations

import os

import pytest

from repro.api import Session, TunerConfig
from repro.core.fitness import Evaluator
from repro.core.report import TuningReport
from repro.experiments.runner import clear_sessions

PAIRS = [("Strassen", "Desktop"), ("Poisson2D SOR", "Desktop")]

#: Evaluations before the injected kill: past the first checkpoint
#: (every 64 commits) and inside the first session's search.
KILL_AFTER = 100


class _Killed(Exception):
    pass


def _report_key(report: TuningReport):
    return (
        report.best.to_json(),
        report.best_time_s,
        report.tuning_time_s,
        report.evaluations,
        report.sizes,
        report.history,
        report.strategy,
        report.seed,
    )


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Uninterrupted batch in its own cache dir (so its checkpoints
    cannot leak into the kill/resume runs)."""
    cache = tmp_path_factory.mktemp("baseline_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    clear_sessions()
    try:
        with Session(
            TunerConfig.from_env(
                tune_many_workers=1, backend="serial", resume=False
            )
        ) as api_session:
            sessions = api_session.run_batch(PAIRS)
        return {key: _report_key(s.report) for key, s in sessions.items()}
    finally:
        clear_sessions()
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


def _kill_then_resume(monkeypatch, tmp_path, resume_backend, workers):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_sessions()

    state = {"count": 0}
    real = Evaluator.evaluate

    def bomb(self, config, size):
        state["count"] += 1
        if state["count"] > KILL_AFTER:
            raise _Killed()
        return real(self, config, size)

    monkeypatch.setattr(Evaluator, "evaluate", bomb)
    with pytest.raises(_Killed):
        with Session(
            TunerConfig.from_env(
                tune_many_workers=1, backend="serial", resume=True
            )
        ) as api_session:
            api_session.run_batch(PAIRS)
    monkeypatch.setattr(Evaluator, "evaluate", real)
    checkpoints = os.path.join(str(tmp_path), "checkpoints")
    assert os.path.isdir(checkpoints) and os.listdir(checkpoints), (
        "the killed batch left no checkpoint behind"
    )

    clear_sessions()
    with Session(
        TunerConfig.from_env(
            tune_many_workers=workers, backend=resume_backend, resume=True
        )
    ) as api_session:
        sessions = api_session.run_batch(PAIRS)
    clear_sessions()
    return {key: _report_key(s.report) for key, s in sessions.items()}


def test_killed_tune_many_resumes_byte_identical_serial(
    monkeypatch, tmp_path, baseline
):
    resumed = _kill_then_resume(monkeypatch, tmp_path, "serial", workers=1)
    assert resumed == baseline


@pytest.mark.slow
def test_killed_tune_many_resumes_byte_identical_thread(
    monkeypatch, tmp_path, baseline
):
    resumed = _kill_then_resume(monkeypatch, tmp_path, "thread", workers=2)
    assert resumed == baseline


@pytest.mark.slow
def test_killed_tune_many_resumes_byte_identical_process(
    monkeypatch, tmp_path, baseline
):
    resumed = _kill_then_resume(monkeypatch, tmp_path, "process", workers=2)
    assert resumed == baseline
