"""Batch tuning (`Session.run_batch`): concurrency must be invisible
in the results, and the session cache must be thread-safe."""

from __future__ import annotations

import threading

import pytest

from repro.api import Session, TunerConfig
from repro.apps.registry import benchmark
from repro.compiler.compile import compile_program
from repro.core.search import autotune
from repro.experiments import runner
from repro.experiments.runner import DEFAULT_SEED, clear_sessions
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER

#: Four cheap (benchmark, machine) pairs spanning machines and apps.
PAIRS = [
    ("Strassen", DESKTOP),
    ("Strassen", SERVER),
    ("Poisson2D SOR", LAPTOP),
    ("SVD", DESKTOP),
]


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def batch(pairs, **config_overrides):
    """Run one batch through a fresh Session on the environment config
    plus explicit overrides (`workers` = concurrent sessions)."""
    with Session(TunerConfig.from_env(**config_overrides)) as session:
        return session.run_batch(pairs, seed=DEFAULT_SEED)


def sequential_best(name: str, machine, seed: int) -> str:
    """Reference: a plain sequential autotune call for one pair."""
    spec = benchmark(name)
    compiled = compile_program(spec.build_program(), machine)
    report = autotune(
        compiled,
        lambda size: spec.make_env(size, seed=0),
        max_size=spec.tuning_size,
        seed=seed,
        label=f"{machine.codename} Config",
        accuracy_fn=spec.accuracy_fn,
        accuracy_target=spec.accuracy_target,
    )
    return report.best.to_json()


def test_run_batch_matches_sequential_autotune():
    """Acceptance: 4 pairs, 4 workers — byte-identical winners."""
    sessions = batch(PAIRS, tune_many_workers=4)
    assert len(sessions) == len(PAIRS)
    for name, machine in PAIRS:
        concurrent = sessions[(name, machine.codename)].report.best.to_json()
        reference = sequential_best(name, machine, DEFAULT_SEED)
        assert concurrent == reference, f"{name} on {machine.codename} diverged"


def test_run_batch_populates_the_session_cache():
    with Session(TunerConfig.from_env(tune_many_workers=2)) as session:
        sessions = session.run_batch(PAIRS[:2], seed=DEFAULT_SEED)
        for name, machine in PAIRS[:2]:
            cached = session.tune(name, machine, seed=DEFAULT_SEED)
            assert cached is sessions[(name, machine.codename)]


def test_run_batch_deduplicates_pairs():
    sessions = batch(
        [PAIRS[0], PAIRS[0], ("Strassen", "Desktop")], tune_many_workers=2
    )
    assert len(sessions) == 1


def test_run_batch_accepts_machine_codenames():
    sessions = batch([("Strassen", "Desktop")], tune_many_workers=1)
    assert ("Strassen", "Desktop") in sessions


def test_session_for_is_single_flight_under_contention():
    """Concurrent callers for one key share a single tuning run."""
    results = []
    barrier = threading.Barrier(4)
    config = TunerConfig.from_env()

    def worker():
        barrier.wait()
        results.append(
            runner.session_for("Strassen", DESKTOP, DEFAULT_SEED, config)
        )

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 4
    assert all(session is results[0] for session in results)


def report_fields(session):
    report = session.report
    return (
        report.best.to_json(),
        report.best_time_s,
        report.tuning_time_s,
        report.evaluations,
        report.sizes,
        report.history,
    )


def test_run_batch_process_backend_matches_serial():
    """Process-sharded batches: byte-identical reports, full sessions."""
    sharded = batch(PAIRS, tune_many_workers=4, backend="process")
    clear_sessions()
    serial = batch(PAIRS, tune_many_workers=1, backend="serial")
    assert len(sharded) == len(PAIRS)
    for name, machine in PAIRS:
        key = (name, machine.codename)
        assert report_fields(sharded[key]) == report_fields(serial[key]), (
            f"process shard diverged on {key}"
        )
        # Rebuilt sessions must be complete (compiled program included).
        assert sharded[key].compiled.program.name == serial[key].compiled.program.name


def test_run_batch_process_backend_populates_the_session_cache():
    with Session(
        TunerConfig.from_env(tune_many_workers=2, backend="process")
    ) as session:
        sessions = session.run_batch(PAIRS[:2], seed=DEFAULT_SEED)
        for name, machine in PAIRS[:2]:
            cached = session.tune(name, machine, seed=DEFAULT_SEED)
            assert cached is sessions[(name, machine.codename)]


def test_run_batch_serial_backend_tunes_sequentially():
    sessions = batch(PAIRS[:2], tune_many_workers=4, backend="serial")
    assert len(sessions) == 2


def test_run_batch_forwards_backend_on_the_sequential_path(monkeypatch):
    """An explicit backend must reach the tuner even when the batch
    degenerates to the sequential path (e.g. `serial` must stay serial
    under a process-backend environment)."""
    captured = []
    real = runner._tune_one

    def spy(name, machine, seed, config, **kwargs):
        captured.append(config.backend)
        return real(name, machine, seed, config, **kwargs)

    monkeypatch.setattr(runner, "_tune_one", spy)
    batch(PAIRS[:1], tune_many_workers=1, backend="serial")
    assert captured == ["serial"]


def test_no_fork_config_never_returns_process(monkeypatch):
    """Sessions tuned on worker threads or inside shard children must
    never fork evaluation pools, whatever the environment says."""
    cases = [
        # (REPRO_TUNER_BACKEND, REPRO_TUNER_WORKERS, expected)
        ("process", "2", "thread"),
        ("process", "1", "serial"),
        (None, "2", "thread"),
        (None, None, "serial"),
        ("serial", "2", "serial"),
        ("thread", None, "thread"),
        ("auto", "3", "thread"),
    ]
    for backend_env, workers_env, expected in cases:
        environ = {}
        if backend_env is not None:
            environ["REPRO_TUNER_BACKEND"] = backend_env
        if workers_env is not None:
            environ["REPRO_TUNER_WORKERS"] = workers_env
        demoted = runner._no_fork_config(TunerConfig.from_env(environ=environ))
        assert demoted.backend == expected, (backend_env, workers_env)
        # A demotion must never read as a user-forced choice.
        if demoted.backend != backend_env:
            assert not demoted.is_explicit("backend")


def test_workers_env_knob(monkeypatch):
    monkeypatch.setenv(runner.TUNE_MANY_WORKERS_ENV, "7")
    assert runner.default_tune_many_workers() == 7
    monkeypatch.setenv(runner.TUNE_MANY_WORKERS_ENV, "bogus")
    assert runner.default_tune_many_workers() == 4
    monkeypatch.delenv(runner.TUNE_MANY_WORKERS_ENV)
    assert runner.default_tune_many_workers() == 4
