"""Batch tuning (`tune_many`): concurrency must be invisible in the
results, and the session cache must be thread-safe."""

from __future__ import annotations

import threading

import pytest

from repro.apps.registry import benchmark
from repro.compiler.compile import compile_program
from repro.core.search import autotune
from repro.experiments import runner
from repro.experiments.runner import (
    DEFAULT_SEED,
    clear_sessions,
    tune_many,
    tuned_session,
)
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER

#: Four cheap (benchmark, machine) pairs spanning machines and apps.
PAIRS = [
    ("Strassen", DESKTOP),
    ("Strassen", SERVER),
    ("Poisson2D SOR", LAPTOP),
    ("SVD", DESKTOP),
]


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def sequential_best(name: str, machine, seed: int) -> str:
    """Reference: a plain sequential autotune call for one pair."""
    spec = benchmark(name)
    compiled = compile_program(spec.build_program(), machine)
    report = autotune(
        compiled,
        lambda size: spec.make_env(size, seed=0),
        max_size=spec.tuning_size,
        seed=seed,
        label=f"{machine.codename} Config",
        accuracy_fn=spec.accuracy_fn,
        accuracy_target=spec.accuracy_target,
    )
    return report.best.to_json()


def test_tune_many_matches_sequential_autotune():
    """Acceptance: 4 pairs, 4 workers — byte-identical winners."""
    sessions = tune_many(PAIRS, seed=DEFAULT_SEED, workers=4)
    assert len(sessions) == len(PAIRS)
    for name, machine in PAIRS:
        concurrent = sessions[(name, machine.codename)].report.best.to_json()
        reference = sequential_best(name, machine, DEFAULT_SEED)
        assert concurrent == reference, f"{name} on {machine.codename} diverged"


def test_tune_many_populates_the_session_cache():
    sessions = tune_many(PAIRS[:2], workers=2)
    for name, machine in PAIRS[:2]:
        cached = tuned_session(name, machine)  # must be a cache hit
        assert cached is sessions[(name, machine.codename)]


def test_tune_many_deduplicates_pairs():
    sessions = tune_many([PAIRS[0], PAIRS[0], ("Strassen", "Desktop")],
                         workers=2)
    assert len(sessions) == 1


def test_tune_many_accepts_machine_codenames():
    sessions = tune_many([("Strassen", "Desktop")], workers=1)
    assert ("Strassen", "Desktop") in sessions


def test_tuned_session_is_single_flight_under_contention():
    """Concurrent callers for one key share a single tuning run."""
    results = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        results.append(tuned_session("Strassen", DESKTOP))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 4
    assert all(session is results[0] for session in results)


def test_workers_env_knob(monkeypatch):
    monkeypatch.setenv(runner.TUNE_MANY_WORKERS_ENV, "7")
    assert runner.default_tune_many_workers() == 7
    monkeypatch.setenv(runner.TUNE_MANY_WORKERS_ENV, "bogus")
    assert runner.default_tune_many_workers() == 4
    monkeypatch.delenv(runner.TUNE_MANY_WORKERS_ENV)
    assert runner.default_tune_many_workers() == 4
