"""Tests for the experiment harnesses (small, fast parameterisations).

The full-scale regenerations live in ``benchmarks/``; these tests
check the harness mechanics and the headline *shape* claims at small
sizes.
"""

import numpy as np
import pytest

from repro.apps import separable_convolution as conv
from repro.compiler.compile import compile_program
from repro.experiments import baselines
from repro.experiments.fig2_convolution import (
    MAPPINGS,
    mapping_config,
    run_fig2_machine,
)
from repro.experiments.fig9_machines import fig9_rows, render_fig9
from repro.errors import ExperimentError
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER
from repro.reporting.tables import render_series, render_table


class TestMappingConfigs:
    def test_all_four_mappings_buildable(self):
        compiled = compile_program(conv.build_program(7), DESKTOP)
        for name in MAPPINGS:
            config = mapping_config(compiled, name)
            config.validate(compiled.training_info)

    def test_unknown_mapping_rejected(self):
        compiled = compile_program(conv.build_program(7), DESKTOP)
        with pytest.raises(ExperimentError):
            mapping_config(compiled, "3D Hologram")

    def test_mappings_differ(self):
        compiled = compile_program(conv.build_program(7), DESKTOP)
        jsons = {mapping_config(compiled, m).to_json() for m in MAPPINGS}
        assert len(jsons) == 4


class TestFig2Shapes:
    @pytest.fixture(scope="class")
    def panels(self):
        widths = (3, 9, 17)
        return {
            machine.codename: run_fig2_machine(
                machine, widths=widths, size=256, include_autotuner=False
            )
            for machine in (DESKTOP, SERVER, LAPTOP)
        }

    def test_separable_wins_at_large_width_on_desktop(self, panels):
        """Two 1-D passes do asymptotically less work: at width 17 the
        separable algorithms beat the 2-D ones on the GPU."""
        panel = panels["Desktop"]
        index = panel.widths.index(17)
        sep = min(panel.series["Separable Localmem"][index],
                  panel.series["Separable No-local"][index])
        two_d = min(panel.series["2D Localmem"][index],
                    panel.series["2D No-local"][index])
        assert sep < two_d

    def test_local_memory_never_helps_on_server(self, panels):
        """The Server's OpenCL 'local memory' is its cache: the
        explicit prefetch is wasted work at every width."""
        panel = panels["Server"]
        for index in range(len(panel.widths)):
            assert (panel.series["Separable No-local"][index]
                    <= panel.series["Separable Localmem"][index])
            assert (panel.series["2D No-local"][index]
                    <= panel.series["2D Localmem"][index])

    def test_local_memory_helps_on_desktop_at_large_widths(self, panels):
        panel = panels["Desktop"]
        index = panel.widths.index(17)
        assert (panel.series["2D Localmem"][index]
                < panel.series["2D No-local"][index])

    def test_results_are_per_machine(self, panels):
        series_a = panels["Desktop"].series["2D Localmem"]
        series_b = panels["Server"].series["2D Localmem"]
        assert series_a != series_b

    def test_render(self, panels):
        text = panels["Desktop"].render()
        assert "Figure 2 (Desktop)" in text
        assert "2D Localmem" in text


class TestBaselines:
    def test_cpu_only_config_never_uses_gpu(self):
        from repro.apps import blackscholes
        compiled = compile_program(blackscholes.build_program(), DESKTOP)
        config = baselines.cpu_only_config(compiled)
        assert config.select_index("BlackScholes", 10**6) == 0
        assert config.tunable("gpu_ratio_BlackScholes", 8) == 0

    def test_gpu_only_sort_config_picks_bitonic(self):
        from repro.apps import sort as sort_app
        compiled = compile_program(sort_app.build_program(), DESKTOP)
        config = baselines.gpu_only_sort_config(compiled)
        index = config.select_index("SortInPlace", 10**6)
        choice = compiled.transform("SortInPlace").exec_choices[index]
        assert choice.name == "bitonic_sort/opencl"

    def test_gpu_only_config_rejects_wrong_program(self):
        from repro.apps import blackscholes
        compiled = compile_program(blackscholes.build_program(), DESKTOP)
        with pytest.raises(ExperimentError):
            baselines.gpu_only_sort_config(compiled)

    def test_handcoded_baselines_need_discrete_gpu(self):
        with pytest.raises(ExperimentError):
            baselines.handcoded_matmul_time(SERVER, 512)
        assert baselines.handcoded_matmul_time(DESKTOP, 512) > 0

    def test_handcoded_times_scale_with_size(self):
        assert baselines.handcoded_radix_sort_time(DESKTOP, 2**20) > (
            baselines.handcoded_radix_sort_time(DESKTOP, 2**16)
        )
        assert baselines.cudpp_tridiagonal_time(DESKTOP, 512) > 0


class TestFig9:
    def test_three_rows(self):
        rows = fig9_rows()
        assert len(rows) == 3
        assert rows[0][0] == "Desktop"
        assert rows[1][3] == "None"  # Server has no GPU

    def test_render_contains_devices(self):
        text = render_fig9()
        assert "Tesla C2070" in text
        assert "Radeon HD 6630M" in text


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xxx", 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_series(self):
        text = render_series("x", [1, 2], {"y": [0.1, 0.2]}, title="t")
        assert text.splitlines()[0] == "t"
        assert "0.1" in text
