"""Structural tests of the benchmark programs: choice inventories,
kernel generation outcomes, and per-benchmark paper properties."""

import numpy as np
import pytest

from repro.apps import (
    blackscholes,
    poisson2d,
    separable_convolution,
    sort,
    strassen,
    svd,
    tridiagonal,
)
from repro.compiler.compile import compile_program
from repro.hardware.machines import DESKTOP, SERVER


class TestBlackScholes:
    def test_single_kernel_no_local_variant(self):
        """Elementwise (bounding box 1): only the global variant."""
        compiled = compile_program(blackscholes.build_program(), DESKTOP)
        assert compiled.kernel_count == 1
        names = [c.name for c in compiled.transform("BlackScholes").exec_choices]
        assert names == ["formula/cpu", "formula/opencl"]

    def test_cpu_pays_more_per_option(self):
        rule = compiled_rule = None
        program = blackscholes.build_program()
        rule = program.transform("BlackScholes").choices[0].rule
        cost = rule.cost.resolve({})
        assert cost.effective_cpu_flops_per_item > cost.flops_per_item

    def test_prices_positive_and_bounded(self):
        env = blackscholes.make_env(1000, seed=0)
        prices = blackscholes.reference(env)
        assert (prices > 0).all()
        assert (prices <= env["In"]).all()  # call <= spot


class TestSeparableConvolution:
    def test_figure1_structure(self):
        """Top-level: 2 authored choices; three Convolve* leaves."""
        program = separable_convolution.build_program(7)
        top = program.transform("SeparableConvolution")
        assert [c.name for c in top.choices] == ["single_pass_2d", "separable"]
        assert set(program.transforms) == {
            "SeparableConvolution", "Convolve2D", "ConvolveRows", "ConvolveColumns",
        }

    def test_six_kernels_generated(self):
        """Each Convolve* gets global + local variants (bbox > 1)."""
        compiled = compile_program(separable_convolution.build_program(7), DESKTOP)
        assert compiled.kernel_count == 6

    def test_buffer_shape(self):
        env = separable_convolution.make_env(64, kernel_width=5)
        assert env["Out"].shape == (60, 60)

    def test_kernel_normalised(self):
        env = separable_convolution.make_env(32, kernel_width=5, seed=1)
        assert env["Kernel"].sum() == pytest.approx(1.0)


class TestSort:
    def test_nine_algorithm_choices(self):
        program = sort.build_program()
        assert len(program.transform("SortInPlace").choices) == 9

    def test_recursive_sorts_not_opencl_mapped(self):
        compiled = compile_program(sort.build_program(), DESKTOP)
        names = [c.name for c in compiled.transform("SortInPlace").exec_choices]
        assert "quick_sort/opencl" not in names
        assert "merge_sort_2/opencl" not in names
        # but the sequential-pattern ones are:
        assert "bitonic_sort/opencl" in names

    def test_copy_helper_gets_a_kernel(self):
        """'Some helper functions, such as copy, are mapped to OpenCL.'"""
        compiled = compile_program(sort.build_program(), DESKTOP)
        assert any("Copy" in name for name in compiled.kernels)

    def test_merge_runs_stability_shape(self):
        a = np.array([1.0, 3.0, 5.0])
        b = np.array([2.0, 3.0, 4.0])
        merged = sort.merge_runs(a, b)
        np.testing.assert_array_equal(merged, np.sort(np.concatenate([a, b])))


class TestStrassen:
    def test_five_authored_choices(self):
        program = strassen.build_program()
        assert [c.name for c in program.transform("MatMul").choices] == list(
            strassen.CHOICE_ORDER
        )

    def test_lapack_not_opencl_mapped(self):
        compiled = compile_program(strassen.build_program(), DESKTOP)
        names = [c.name for c in compiled.transform("MatMul").exec_choices]
        assert "lapack/opencl" not in names
        assert "naive/opencl" in names
        assert "naive/opencl_local" in names
        key = "MatMul/lapack"
        assert "external" in compiled.training_info.rejection_log[key]

    def test_strassen_recursion_is_correct(self):
        """Verify the 7-product algebra explicitly at one level."""
        from repro.core.configuration import default_configuration
        from repro.core.selector import Selector
        from repro.runtime.executor import run_program

        compiled = compile_program(strassen.build_program(), DESKTOP)
        config = default_configuration(compiled.training_info)
        config.selectors["MatMul"] = Selector(
            cutoffs=(64 * 64 + 1,),
            algorithms=(
                compiled.transform("MatMul").choice_index("lapack/cpu"),
                compiled.transform("MatMul").choice_index("strassen/cpu"),
            ),
        )
        env = strassen.make_env(128, seed=2)
        run_program(compiled, config, env)
        np.testing.assert_allclose(env["C"], env["A"] @ env["B"], rtol=1e-10)


class TestSVD:
    def test_embeds_strassen_matmul(self):
        program = svd.build_program()
        assert "MatMul" in program.transforms
        assert len(program.transform("MatMul").choices) == 5

    def test_variable_accuracy_flag(self):
        program = svd.build_program()
        assert program.transform("SVD").variable_accuracy

    def test_rank_tunable_registered(self):
        compiled = compile_program(svd.build_program(), DESKTOP)
        assert "svd_rank" in compiled.training_info.tunables

    def test_gram_phase_is_task_parallel(self):
        program = svd.build_program()
        phase = program.transform("GramPhase").choices[0]
        assert phase.parallel_steps

    def test_reference_error_decreases_with_rank(self):
        env = svd.make_env(48, seed=0)
        errs = []
        for rank in (2, 8, 32):
            approx = svd.reference(env, rank=rank)
            errs.append(np.linalg.norm(approx - env["A"]))
        assert errs == sorted(errs, reverse=True)


class TestTridiagonal:
    def test_three_solver_choices(self):
        program = tridiagonal.build_program()
        names = [c.name for c in program.transform("TridiagonalSolve").choices]
        assert names == ["thomas_direct", "cyclic_reduction", "pcr"]

    def test_cr_is_strided_thomas_is_not(self):
        program = tridiagonal.build_program()
        choices = {c.name: c.rule for c in
                   program.transform("TridiagonalSolve").choices}
        assert choices["cyclic_reduction"].cost.resolve({"_size": 1024}).strided_access
        assert not choices["thomas_direct"].cost.resolve({"_size": 1024}).strided_access

    def test_system_is_diagonally_dominant(self):
        env = tridiagonal.make_env(16, seed=0)
        assert (env["Diag"] > np.abs(env["Lower"]) + np.abs(env["Upper"]) - 1e-12).all()

    def test_reference_solves_the_system(self):
        env = tridiagonal.make_env(8, seed=1)
        x = tridiagonal.reference(env)
        n = len(x)
        residual = env["Diag"] * x
        residual[1:] += env["Lower"][1:] * x[:-1]
        residual[:-1] += env["Upper"][:-1] * x[1:]
        np.testing.assert_allclose(residual, env["Rhs"], rtol=1e-9)


class TestPoisson:
    def test_pipeline_structure(self):
        program = poisson2d.build_program()
        top = program.transform("Poisson2D").choices[0]
        assert [s.transform for s in top.steps] == ["Split", "SORLoop", "Merge"]

    def test_loop_driver_does_not_touch_data(self):
        program = poisson2d.build_program()
        rule = program.transform("SORLoop").choices[0].rule
        assert not rule.touches_data

    def test_iteration_kernel_launch_count(self):
        program = poisson2d.build_program()
        rule = program.transform("SORIteration").choices[0].rule
        assert rule.cost.resolve({}).kernel_launches == 2
