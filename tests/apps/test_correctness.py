"""Correctness of every benchmark on every machine and backend.

Each app's rule bodies compute real numpy results; these tests check
them against straight-line references — for the default (CPU)
configuration on all three machines, and for every forced algorithmic
choice of the main transform on Desktop.
"""

import numpy as np
import pytest

from repro.apps import all_benchmarks, benchmark
from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.selector import Selector
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER
from repro.runtime.executor import run_program

#: Small sizes keep the suite fast; virtual time is size-faithful.
SMALL_SIZE = {
    "Black-Sholes": 10_000,
    "Poisson2D SOR": 64,
    "SeparableConv.": 96,
    "Sort": 2048,
    "Strassen": 64,
    "SVD": 64,
    "Tridiagonal Solver": 48,
}

#: The transform whose choices we sweep per benchmark.
MAIN_TRANSFORM = {
    "Black-Sholes": "BlackScholes",
    "Poisson2D SOR": "SORIteration",
    "SeparableConv.": "SeparableConvolution",
    "Sort": "SortInPlace",
    "Strassen": "MatMul",
    "SVD": "MatMul",
    "Tridiagonal Solver": "TridiagonalSolve",
}


def check(spec, env, atol=1e-8):
    if spec.reference is not None:
        np.testing.assert_allclose(
            env[spec.output_name], spec.reference(env), atol=atol, rtol=1e-7
        )


@pytest.mark.parametrize("machine", [DESKTOP, SERVER, LAPTOP],
                         ids=lambda m: m.codename)
@pytest.mark.parametrize("name", list(SMALL_SIZE))
def test_default_config_correct(name, machine):
    spec = benchmark(name)
    compiled = compile_program(spec.build_program(), machine)
    config = default_configuration(compiled.training_info)
    env = spec.make_env(SMALL_SIZE[name], seed=7)
    run_program(compiled, config, env, seed=1)
    check(spec, env)


@pytest.mark.parametrize("name", list(SMALL_SIZE))
def test_every_choice_correct_on_desktop(name):
    """Force each execution choice of the main transform in turn."""
    spec = benchmark(name)
    compiled = compile_program(spec.build_program(), DESKTOP)
    transform_name = MAIN_TRANSFORM[name]
    compiled_t = compiled.transform(transform_name)
    for index in range(compiled_t.num_choices):
        config = default_configuration(compiled.training_info)
        config.selectors[transform_name] = Selector.constant(index)
        env = spec.make_env(SMALL_SIZE[name], seed=3)
        run_program(compiled, config, env, seed=2)
        if spec.reference is not None:
            np.testing.assert_allclose(
                env[spec.output_name], spec.reference(env),
                atol=1e-8, rtol=1e-7,
                err_msg=f"{name}: choice {compiled_t.exec_choices[index].name}",
            )


@pytest.mark.parametrize("name", list(SMALL_SIZE))
def test_results_reproducible(name):
    spec = benchmark(name)
    compiled = compile_program(spec.build_program(), DESKTOP)
    config = default_configuration(compiled.training_info)
    env_a = spec.make_env(SMALL_SIZE[name], seed=5)
    env_b = spec.make_env(SMALL_SIZE[name], seed=5)
    t_a = run_program(compiled, config, env_a, seed=9).time_s
    t_b = run_program(compiled, config, env_b, seed=9).time_s
    assert t_a == t_b
    np.testing.assert_array_equal(env_a[spec.output_name], env_b[spec.output_name])


def test_svd_accuracy_improves_with_rank():
    spec = benchmark("SVD")
    compiled = compile_program(spec.build_program(), DESKTOP)
    errors = []
    for rank in (4, 16, 64):
        config = default_configuration(compiled.training_info)
        config.tunables["svd_rank"] = rank
        env = spec.make_env(64, seed=0)
        run_program(compiled, config, env)
        errors.append(spec.accuracy_fn(env))
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 0.1


def test_all_benchmarks_registered():
    names = [spec.name for spec in all_benchmarks()]
    assert names == [
        "Black-Sholes",
        "Poisson2D SOR",
        "SeparableConv.",
        "Sort",
        "Strassen",
        "SVD",
        "Tridiagonal Solver",
    ]


def test_unknown_benchmark_rejected():
    from repro.errors import ExperimentError
    with pytest.raises(ExperimentError):
        benchmark("Quicksort 2: The Sequel")
