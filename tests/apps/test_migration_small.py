"""Fast end-to-end migration sanity checks (the Figure 7 story at
unit-test scale): a configuration tuned for one machine runs
*correctly* on every other machine, just slower."""

import numpy as np
import pytest

from repro.apps import benchmark
from repro.compiler.compile import compile_program
from repro.core import autotune
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER

SMALL = {
    "Black-Sholes": 20_000,
    "Strassen": 128,
    "Tridiagonal Solver": 96,
}


@pytest.mark.parametrize("name", list(SMALL))
def test_migrated_configs_stay_correct(name):
    """Any machine's tuned configuration produces correct results on
    every other machine — migration affects time, never semantics."""
    from repro.runtime.executor import run_program

    spec = benchmark(name)
    program = spec.build_program()
    compiled = {m.codename: compile_program(program, m)
                for m in (DESKTOP, SERVER, LAPTOP)}
    report = autotune(
        compiled["Desktop"],
        lambda n: spec.make_env(n, seed=0),
        max_size=SMALL[name],
        seed=4,
    )
    for codename, target in compiled.items():
        env = spec.make_env(SMALL[name], seed=1)
        run_program(target, report.best, env, seed=1)
        if spec.reference is not None:
            np.testing.assert_allclose(
                env[spec.output_name], spec.reference(env), rtol=1e-7, atol=1e-9,
                err_msg=f"{name}: Desktop config wrong on {codename}",
            )


def test_config_json_survives_migration():
    """Configurations migrate as JSON files between machines."""
    from repro.core.configuration import Configuration
    from repro.runtime.executor import run_program

    spec = benchmark("Black-Sholes")
    program = spec.build_program()
    desktop = compile_program(program, DESKTOP)
    laptop = compile_program(program, LAPTOP)
    report = autotune(
        desktop, lambda n: spec.make_env(n, seed=0), max_size=20_000, seed=4
    )
    text = report.best.to_json()
    restored = Configuration.from_json(text)
    restored.validate(laptop.training_info)
    env = spec.make_env(20_000, seed=2)
    run_program(laptop, restored, env)
    np.testing.assert_allclose(env["Out"], spec.reference(env))
