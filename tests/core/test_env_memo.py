"""The evaluator's memoised test-environment handout.

Input generation is hoisted into a process-wide memo; these tests pin
the safety contract: the factory runs once per (factory, program,
size, seed), handed-out environments never alias each other's writable
arrays, and the memoised master is never mutated by evaluations.
"""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.fitness import (
    _ENV_MEMO,
    _ENV_MEMO_CAPACITY,
    Evaluator,
    clear_env_memo,
)
from repro.core.result_cache import ResultCache
from repro.hardware.machines import DESKTOP

from tests.conftest import make_scale_program


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_env_memo()
    yield
    clear_env_memo()


def _make_factory(calls):
    def factory(size):
        calls.append(size)
        rng = np.random.default_rng(size)
        return {"In": rng.random(size), "Out": np.zeros(size)}

    return factory


def _evaluator(factory, seed=0):
    compiled = compile_program(make_scale_program(3.0), DESKTOP)
    return compiled, Evaluator(
        compiled, factory, seed=seed, result_cache=ResultCache(None)
    )


class TestEnvMemo:
    def test_factory_runs_once_per_size(self):
        calls = []
        compiled, evaluator = _evaluator(_make_factory(calls))
        config = default_configuration(compiled.training_info)
        for cutoff in (16, 17, 18):
            variant = config.copy()
            variant.tunables["seq_par_cutoff"] = cutoff
            evaluator.evaluate(variant, 64)
        assert calls == [64]
        evaluator.evaluate(config, 128)
        assert calls == [64, 128]

    def test_envs_not_aliased_across_evaluations(self):
        calls = []
        compiled, evaluator = _evaluator(_make_factory(calls))
        env_a = evaluator._fresh_env(64)
        env_b = evaluator._fresh_env(64)
        # Writable (output) arrays are private per evaluation.
        assert env_a["Out"] is not env_b["Out"]
        env_a["Out"][:] = 123.0
        assert not np.any(env_b["Out"])
        # Read-only inputs are shared copy-on-write with the master.
        assert env_a["In"] is env_b["In"]
        assert calls == [64]

    def test_master_never_mutated_by_evaluations(self):
        calls = []
        factory = _make_factory(calls)
        compiled, evaluator = _evaluator(factory)
        config = default_configuration(compiled.training_info)
        evaluator.evaluate(config, 64)
        splitty = config.copy()
        splitty.tunables["split_Scale"] = 7
        splitty.tunables["seq_par_cutoff"] = 16
        evaluator.evaluate(splitty, 64)
        # A third handout must still equal a from-scratch build.
        pristine = factory(64)
        handout = evaluator._fresh_env(64)
        for name in pristine:
            assert np.array_equal(handout[name], pristine[name]), name

    def test_same_factory_results_identical_to_unmemoised(self):
        calls = []
        compiled, evaluator = _evaluator(_make_factory(calls))
        config = default_configuration(compiled.training_info)
        first = evaluator.evaluate(config, 64)
        # A separate evaluator (cold pure memo, warm env memo) agrees.
        _, other = _evaluator(_make_factory([]))
        assert other.evaluate(config, 64).time_s == first.time_s

    def test_distinct_seeds_use_distinct_entries(self):
        calls = []
        factory = _make_factory(calls)
        _, evaluator_a = _evaluator(factory, seed=0)
        _, evaluator_b = _evaluator(factory, seed=1)
        evaluator_a._fresh_env(64)
        evaluator_b._fresh_env(64)
        assert calls == [64, 64]

    def test_memo_is_lru_bounded(self):
        calls = []
        compiled, evaluator = _evaluator(_make_factory(calls))
        for size in range(32, 32 + 2 * _ENV_MEMO_CAPACITY):
            evaluator._fresh_env(size)
        assert len(_ENV_MEMO) <= _ENV_MEMO_CAPACITY


class TestBatchedHandout:
    """The copy-on-write contract extends to lane-batched handout."""

    def test_lanes_share_input_masters_once(self):
        calls = []
        compiled, evaluator = _evaluator(_make_factory(calls))
        envs = evaluator._fresh_env_batch(64, 4)
        # One factory call feeds the whole batch...
        assert calls == [64]
        # ...and every lane aliases the same read-only input master.
        first_in = envs[0]["In"]
        assert all(env["In"] is first_in for env in envs)

    def test_lanes_have_private_outputs(self):
        compiled, evaluator = _evaluator(_make_factory([]))
        envs = evaluator._fresh_env_batch(64, 4, numeric=True)
        outs = [env["Out"] for env in envs]
        assert len({id(out) for out in outs}) == len(outs)
        outs[0][:] = 123.0
        for other in outs[1:]:
            assert not np.any(other)

    def test_masters_pristine_after_batched_compute(self):
        calls = []
        factory = _make_factory(calls)
        compiled, evaluator = _evaluator(factory)
        config = default_configuration(compiled.training_info)
        variants = [config]
        for cutoff in (16, 17, 18):
            variant = config.copy()
            variant.tunables["seq_par_cutoff"] = cutoff
            variants.append(variant)
        evaluator.compute_batch(variants, 64)
        # A post-batch handout must still equal a from-scratch build.
        pristine = factory(64)
        handout = evaluator._fresh_env(64)
        for name in pristine:
            assert np.array_equal(handout[name], pristine[name]), name

    def test_batch_results_match_scalar_path(self):
        compiled, evaluator = _evaluator(_make_factory([]))
        config = default_configuration(compiled.training_info)
        variants = [config]
        for cutoff in (16, 18):
            variant = config.copy()
            variant.tunables["seq_par_cutoff"] = cutoff
            variants.append(variant)
        batch = evaluator.compute_batch(variants, 64)
        _, scalar = _evaluator(_make_factory([]))
        for variant, pure in zip(variants, batch):
            assert scalar.compute(variant, 64) == pure

    def test_elided_lane_outputs_are_read_only_stand_ins(self):
        compiled, evaluator = _evaluator(_make_factory([]))
        envs = evaluator._fresh_env_batch(64, 2, numeric=False)
        for env in envs:
            out = env["Out"]
            assert out.shape == (64,)
            assert out.dtype == np.float64
            with pytest.raises(ValueError):
                out[:] = 1.0
        # Inputs stay genuine shared masters even on elided lanes.
        assert envs[0]["In"] is envs[1]["In"]
