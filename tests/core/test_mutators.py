"""Unit tests for the autotuner's mutation operators (paper 5.2)."""

import random

import pytest

from repro.compiler.compile import compile_program
from repro.compiler.training_info import SelectorSpec, TunableSpec
from repro.core.configuration import default_configuration
from repro.core.mutators import (
    SelectorAddLevel,
    SelectorChangeAlgorithm,
    SelectorRemoveLevel,
    SelectorScaleCutoff,
    TunableMutator,
    mutators_for,
)
from repro.core.selector import Selector
from repro.errors import ConfigurationError
from repro.hardware.machines import DESKTOP

from tests.conftest import make_stencil_program


@pytest.fixture
def training():
    return compile_program(make_stencil_program(5), DESKTOP).training_info


@pytest.fixture
def config(training):
    return default_configuration(training)


def rng(seed=0):
    return random.Random(seed)


SPEC = SelectorSpec(name="Stencil", num_algorithms=3)


class TestSelectorMutators:
    def test_add_level_increases_levels(self, config):
        mutator = SelectorAddLevel(SPEC)
        child = mutator.mutate(config, rng(), current_size=1000)
        assert child is not None
        assert child.selectors["Stencil"].levels == 2
        # Parent untouched.
        assert config.selectors["Stencil"].levels == 1

    def test_add_level_respects_max(self, config):
        mutator = SelectorAddLevel(SelectorSpec(name="Stencil", num_algorithms=3,
                                                max_levels=1))
        assert mutator.mutate(config, rng(), 100) is None

    def test_remove_level_needs_cutoffs(self, config):
        mutator = SelectorRemoveLevel(SPEC)
        assert mutator.mutate(config, rng(), 100) is None
        config.selectors["Stencil"] = Selector(cutoffs=(10,), algorithms=(0, 1))
        child = mutator.mutate(config, rng(), 100)
        assert child.selectors["Stencil"].levels == 1

    def test_change_algorithm_always_changes(self, config):
        mutator = SelectorChangeAlgorithm(SPEC)
        for seed in range(20):
            child = mutator.mutate(config, rng(seed), 100)
            assert child.selectors["Stencil"] != config.selectors["Stencil"]

    def test_change_algorithm_needs_choices(self, config):
        mutator = SelectorChangeAlgorithm(
            SelectorSpec(name="Stencil", num_algorithms=1)
        )
        assert mutator.mutate(config, rng(), 100) is None

    def test_scale_cutoff(self, config):
        config.selectors["Stencil"] = Selector(cutoffs=(64,), algorithms=(0, 1))
        mutator = SelectorScaleCutoff(SPEC)
        moved = 0
        for seed in range(10):
            child = mutator.mutate(config, rng(seed), 100)
            if child is not None:
                assert child.selectors["Stencil"].cutoffs != (64,)
                moved += 1
        assert moved > 0


class TestTunableMutators:
    def test_lognormal_stays_in_bounds(self, config):
        spec = TunableSpec(name="lws_Stencil", lo=1, hi=1024, default=256)
        mutator = TunableMutator(spec)
        for seed in range(50):
            child = mutator.mutate(config, rng(seed), 100)
            if child is None:
                continue
            assert spec.lo <= child.tunables["lws_Stencil"] <= spec.hi

    def test_uniform_stays_in_bounds(self, config):
        spec = TunableSpec(name="gpu_ratio_Stencil", lo=0, hi=8, default=8,
                           scale="uniform")
        mutator = TunableMutator(spec)
        values = set()
        for seed in range(60):
            child = mutator.mutate(config, rng(seed), 100)
            if child is not None:
                values.add(child.tunables["gpu_ratio_Stencil"])
        assert values  # something changed
        assert all(0 <= v <= 8 for v in values)
        # Single-step neighbourhood moves must appear.
        assert 7 in values

    def test_mutation_changes_value_or_aborts(self, config):
        spec = TunableSpec(name="seq_par_cutoff", lo=16, hi=2**20, default=1024)
        mutator = TunableMutator(spec)
        for seed in range(20):
            child = mutator.mutate(config, rng(seed), 100)
            if child is not None:
                assert child.tunables["seq_par_cutoff"] != 1024


class TestMutatorGeneration:
    def test_generated_from_training_info(self, training):
        mutators = mutators_for(training)
        kinds = {type(m).__name__ for m in mutators}
        assert "SelectorAddLevel" in kinds
        assert "SelectorChangeAlgorithm" in kinds
        assert "TunableMutator" in kinds

    def test_single_algorithm_selectors_skipped(self, training):
        mutators = mutators_for(training)
        # Stencil has 3 algorithms -> 4 selector mutators; no other
        # transform exists, so all selector mutators target Stencil.
        selector_mutators = [m for m in mutators if hasattr(m, "spec")
                             and isinstance(m.spec, SelectorSpec)]
        assert all(m.spec.name == "Stencil" for m in selector_mutators)

    def test_children_validate(self, training, config):
        mutators = mutators_for(training)
        generator = rng(7)
        for _ in range(200):
            mutator = generator.choice(mutators)
            child = mutator.mutate(config, generator, current_size=4096)
            if child is not None:
                child.validate(training)  # must never be illegal
