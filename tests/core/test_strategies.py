"""Tests for the pluggable search strategies and their registry."""

from __future__ import annotations

import pytest

from repro.api.config import TunerConfig
from repro.apps.registry import benchmark, canonical_env_factory
from repro.compiler.compile import compile_program
from repro.core.result_cache import ResultCache
from repro.core.search import EvolutionaryTuner, TuningReport, autotune
from repro.core.strategies import (
    STRATEGIES,
    SearchStrategy,
    create_strategy,
    default_strategy,
    register_strategy,
    resolve_strategy,
    strategy_names,
)
from repro.errors import TuningError
from repro.hardware.machines import DESKTOP

from tests.conftest import make_stencil_program, scale_env

ALL_STRATEGIES = tuple(strategy_names())


def env_factory(n):
    return scale_env(n, seed=1)


def tune_stencil(strategy, seed=7, workers=1, backend="serial", max_size=50_000):
    compiled = compile_program(make_stencil_program(5), DESKTOP)
    return autotune(
        compiled,
        env_factory,
        max_size=max_size,
        seed=seed,
        config=TunerConfig.from_env(
            strategy=strategy, workers=workers, backend=backend, resume=False
        ),
        result_cache=ResultCache(None),
    )


def report_key(report: TuningReport):
    return (
        report.best.to_json(),
        report.best_time_s,
        report.tuning_time_s,
        report.evaluations,
        report.sizes,
        report.history,
        report.strategy,
        report.seed,
    )


class TestRegistry:
    def test_four_strategies_ship_builtin(self):
        assert set(ALL_STRATEGIES) >= {
            "evolutionary", "hillclimb", "random", "bandit",
        }
        assert ALL_STRATEGIES[0] == "evolutionary"  # the default leads

    def test_resolve_explicit_and_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNER_STRATEGY", raising=False)
        assert resolve_strategy(None) == "evolutionary"
        assert resolve_strategy("HillClimb ") == "hillclimb"
        with pytest.raises(TuningError, match="unknown search strategy"):
            resolve_strategy("simulated-annealing")

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNER_STRATEGY", "bandit")
        assert default_strategy() == "bandit"
        assert resolve_strategy(None) == "bandit"
        monkeypatch.setenv("REPRO_TUNER_STRATEGY", "nonsense")
        assert default_strategy() == "evolutionary"

    def test_register_strategy_plugs_in(self):
        class Custom(STRATEGIES["hillclimb"]):
            name = "custom-test"

        try:
            register_strategy(Custom)
            assert resolve_strategy("custom-test") == "custom-test"
            assert "custom-test" in strategy_names()
        finally:
            STRATEGIES.pop("custom-test", None)

    def test_register_requires_a_name(self):
        class Nameless(SearchStrategy):  # type: ignore[abstract]
            name = "abstract"

        with pytest.raises(TuningError, match="registry name"):
            register_strategy(Nameless)

    def test_tuner_reads_strategy_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNER_STRATEGY", "random")
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        with EvolutionaryTuner(
            compiled, env_factory, max_size=1024,
            config=TunerConfig.from_env(resume=False),
            result_cache=ResultCache(None),
        ) as tuner:
            assert tuner.strategy_name == "random"


class TestAllStrategies:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_deterministic_per_seed(self, strategy):
        a = tune_stencil(strategy, seed=7)
        b = tune_stencil(strategy, seed=7)
        assert report_key(a) == report_key(b)
        assert a.strategy == strategy
        assert a.seed == 7

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_backend_and_depth_invariant(self, strategy):
        """Speculation depth and backend must never change a report —
        the strategy subsystem's core promise."""
        serial = tune_stencil(strategy, seed=7)
        deep = tune_stencil(strategy, seed=7, workers=4, backend="thread")
        assert report_key(deep) == report_key(serial)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_produces_a_competitive_configuration(self, strategy):
        """Every strategy must at least beat the untuned default."""
        from repro.core.configuration import default_configuration
        from repro.core.fitness import Evaluator

        compiled = compile_program(make_stencil_program(5), DESKTOP)
        evaluator = Evaluator(
            compiled, env_factory, result_cache=ResultCache(None)
        )
        default_time = evaluator.evaluate(
            default_configuration(compiled.training_info), 200_000
        ).time_s
        report = tune_stencil(strategy, seed=5, max_size=200_000)
        assert report.best_time_s <= default_time
        assert len(report.history) == len(report.sizes)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_report_carries_provenance(self, strategy):
        report = tune_stencil(strategy, seed=7, max_size=2048)
        assert report.strategy == strategy
        assert report.seed == 7
        assert report.best.label  # labelled by the driver

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_state_payload_is_json_safe_and_restores(self, strategy):
        """A freshly built strategy restored from another's state must
        continue to the identical report (driver-level resume relies on
        this for every registered strategy)."""
        import json

        from repro.core.strategies import create_strategy

        compiled = compile_program(make_stencil_program(5), DESKTOP)
        with EvolutionaryTuner(
            compiled, env_factory, max_size=2048, seed=3,
            config=TunerConfig.from_env(strategy=strategy, resume=False),
            result_cache=ResultCache(None),
        ) as tuner:
            plan = tuner._plan
            original = tuner._driver.strategy
            # Drive a few proposals to completion through a private
            # evaluator, then snapshot mid-search.
            evaluator = tuner.evaluator
            for _ in range(3):
                proposals = original.propose(4)
                if not proposals:
                    break
                for proposal in proposals:
                    evaluation = evaluator.evaluate(proposal.config, proposal.size)
                    if original.observe(proposal, evaluation):
                        break
            payload = json.loads(json.dumps(original.state_payload()))
            clone = create_strategy(strategy, plan)
            clone.restore_state(payload)
            assert clone.state_payload() == original.state_payload()


class TestStrategyBehaviour:
    def test_hillclimb_keeps_a_single_incumbent(self):
        from repro.core.strategies import create_strategy

        compiled = compile_program(make_stencil_program(5), DESKTOP)
        with EvolutionaryTuner(
            compiled, env_factory, max_size=2048, seed=3,
            config=TunerConfig.from_env(strategy="hillclimb", resume=False),
            result_cache=ResultCache(None),
        ) as tuner:
            tuner.tune()
            strategy = tuner._driver.strategy
            assert len(strategy._population.members) == 1

    def test_bandit_accumulates_pulls_and_rewards(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        with EvolutionaryTuner(
            compiled, env_factory, max_size=50_000, seed=3,
            config=TunerConfig.from_env(strategy="bandit", resume=False),
            result_cache=ResultCache(None),
        ) as tuner:
            tuner.tune()
            strategy = tuner._driver.strategy
            assert sum(strategy._pulls) > 0
            # Rewards only ever come from admissions, and every arm's
            # mean reward is a probability.
            assert all(
                r <= p for r, p in zip(strategy._rewards, strategy._pulls)
            )

    def test_random_samples_respect_the_search_space(self):
        from repro.core.strategies import SearchPlan, create_strategy

        compiled = compile_program(make_stencil_program(5), DESKTOP)
        with EvolutionaryTuner(
            compiled, env_factory, max_size=2048, seed=3,
            config=TunerConfig.from_env(strategy="random", resume=False),
            result_cache=ResultCache(None),
        ) as tuner:
            strategy = tuner._driver.strategy
            training = compiled.training_info
            for _ in range(50):
                sample = strategy._sample()
                sample.validate(training)  # must never raise

    def test_unknown_strategy_raises_at_construction(self):
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        with pytest.raises(TuningError, match="unknown search strategy"):
            EvolutionaryTuner(
                compiled, env_factory, max_size=1024,
                config=TunerConfig.from_env(strategy="annealing"),
                result_cache=ResultCache(None),
            )
