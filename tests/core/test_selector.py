"""Unit tests for selectors (paper Section 5.1 SELECT semantics)."""

import pytest

from repro.core.selector import Selector
from repro.errors import ConfigurationError


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Selector(cutoffs=(10,), algorithms=(0,))

    def test_cutoffs_must_increase(self):
        with pytest.raises(ConfigurationError):
            Selector(cutoffs=(10, 10), algorithms=(0, 1, 2))
        with pytest.raises(ConfigurationError):
            Selector(cutoffs=(20, 10), algorithms=(0, 1, 2))

    def test_cutoffs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Selector(cutoffs=(0,), algorithms=(0, 1))

    def test_negative_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            Selector(cutoffs=(), algorithms=(-1,))


class TestSelect:
    def test_constant_selector(self):
        selector = Selector.constant(3)
        for size in (0, 1, 10**9):
            assert selector.select(size) == 3

    def test_select_semantics(self):
        """SELECT(input, s) = a_i s.t. c_i > size >= c_(i-1)."""
        selector = Selector(cutoffs=(100, 1000), algorithms=(0, 1, 2))
        assert selector.select(0) == 0
        assert selector.select(99) == 0
        assert selector.select(100) == 1
        assert selector.select(999) == 1
        assert selector.select(1000) == 2
        assert selector.select(10**9) == 2

    def test_levels(self):
        assert Selector.constant(0).levels == 1
        assert Selector(cutoffs=(5,), algorithms=(0, 1)).levels == 2


class TestLevelOps:
    def test_add_level_splits_range(self):
        selector = Selector(cutoffs=(100,), algorithms=(0, 1))
        grown = selector.with_level_added(10, 2)
        assert grown.cutoffs == (10, 100)
        assert grown.select(5) == 2
        assert grown.select(50) == 0
        assert grown.select(500) == 1

    def test_add_duplicate_cutoff_rejected(self):
        selector = Selector(cutoffs=(100,), algorithms=(0, 1))
        with pytest.raises(ConfigurationError):
            selector.with_level_added(100, 2)

    def test_add_level_at_top(self):
        selector = Selector(cutoffs=(100,), algorithms=(0, 1))
        grown = selector.with_level_added(1000, 2)
        assert grown.select(500) == 2
        assert grown.select(5000) == 1

    def test_remove_level_merges(self):
        selector = Selector(cutoffs=(10, 100), algorithms=(0, 1, 2))
        shrunk = selector.with_level_removed(0)
        assert shrunk.cutoffs == (100,)
        assert shrunk.select(5) == 1

    def test_remove_from_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            Selector.constant(0).with_level_removed(0)

    def test_remove_bad_level_rejected(self):
        selector = Selector(cutoffs=(10,), algorithms=(0, 1))
        with pytest.raises(ConfigurationError):
            selector.with_level_removed(5)

    def test_change_algorithm(self):
        selector = Selector(cutoffs=(10,), algorithms=(0, 1))
        changed = selector.with_algorithm(0, 5)
        assert changed.algorithms == (5, 1)

    def test_scale_cutoff_respects_neighbours(self):
        selector = Selector(cutoffs=(10, 100, 1000), algorithms=(0, 1, 2, 3))
        moved = selector.with_cutoff_scaled(1, 5000)
        assert moved.cutoffs == (10, 999, 1000)
        moved = selector.with_cutoff_scaled(1, 1)
        assert moved.cutoffs == (10, 11, 1000)

    def test_scale_cutoff_no_room_is_identity(self):
        selector = Selector(cutoffs=(10, 11), algorithms=(0, 1, 2))
        # Between 10 and 11 there is no legal integer slot to move to;
        # scaling level 0 clamps into place.
        moved = selector.with_cutoff_scaled(0, 500)
        assert moved.cutoffs[0] <= 10


class TestSerialisation:
    def test_round_trip(self):
        selector = Selector(cutoffs=(10, 100), algorithms=(2, 0, 1))
        assert Selector.from_json(selector.to_json()) == selector

    def test_max_algorithm(self):
        assert Selector(cutoffs=(5,), algorithms=(3, 1)).max_algorithm() == 3
