"""Unit tests for choice configuration files."""

import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import Configuration, default_configuration
from repro.core.selector import Selector
from repro.errors import ConfigurationError
from repro.hardware.machines import DESKTOP

from tests.conftest import make_stencil_program


@pytest.fixture
def training():
    return compile_program(make_stencil_program(5), DESKTOP).training_info


class TestDefaults:
    def test_default_selects_algorithm_zero(self, training):
        config = default_configuration(training)
        assert config.select_index("Stencil", 10) == 0
        assert config.select_index("Stencil", 10**9) == 0

    def test_default_tunables_match_specs(self, training):
        config = default_configuration(training)
        for name, spec in training.tunables.items():
            assert config.tunables[name] == spec.default

    def test_missing_selector_defaults_to_zero(self, training):
        config = Configuration(program_name="stencil-program")
        assert config.select_index("Anything", 5) == 0

    def test_tunable_fallback(self, training):
        config = Configuration(program_name="stencil-program")
        assert config.tunable("missing", 17) == 17


class TestValidation:
    def test_valid_default(self, training):
        default_configuration(training).validate(training)

    def test_unknown_selector_rejected(self, training):
        config = default_configuration(training)
        config.selectors["Ghost"] = Selector.constant(0)
        with pytest.raises(ConfigurationError):
            config.validate(training)

    def test_out_of_range_algorithm_rejected(self, training):
        config = default_configuration(training)
        config.selectors["Stencil"] = Selector.constant(99)
        with pytest.raises(ConfigurationError):
            config.validate(training)

    def test_too_many_levels_rejected(self, training):
        config = default_configuration(training)
        selector = Selector.constant(0)
        for level in range(12):
            selector = selector.with_level_added(2 + level, 0)
        config.selectors["Stencil"] = selector
        with pytest.raises(ConfigurationError):
            config.validate(training)

    def test_unknown_tunable_rejected(self, training):
        config = default_configuration(training)
        config.tunables["bogus"] = 1
        with pytest.raises(ConfigurationError):
            config.validate(training)

    def test_out_of_range_tunable_rejected(self, training):
        config = default_configuration(training)
        config.tunables["gpu_ratio_Stencil"] = 99
        with pytest.raises(ConfigurationError):
            config.validate(training)


class TestSerialisation:
    def test_json_round_trip(self, training):
        config = default_configuration(training, label="Test Config")
        config.selectors["Stencil"] = Selector(cutoffs=(64,), algorithms=(0, 2))
        restored = Configuration.from_json(config.to_json())
        assert restored.program_name == config.program_name
        assert restored.label == "Test Config"
        assert restored.selectors["Stencil"] == config.selectors["Stencil"]
        assert restored.tunables == config.tunables

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration.from_json("{not json")

    def test_copy_is_independent(self, training):
        config = default_configuration(training)
        clone = config.copy(label="clone")
        clone.tunables["seq_par_cutoff"] = 9999
        clone.selectors["Stencil"] = Selector.constant(1)
        assert config.tunables["seq_par_cutoff"] != 9999
        assert config.select_index("Stencil", 10) == 0
        assert clone.label == "clone"

    def test_json_is_deterministic(self, training):
        a = default_configuration(training)
        b = default_configuration(training)
        assert a.to_json() == b.to_json()
