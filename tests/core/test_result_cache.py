"""Regression tests for the cross-session evaluation result cache and
the evaluator's accounting invariants."""

from __future__ import annotations

import json
import os

import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.fitness import Evaluator, program_fingerprint
from repro.core.result_cache import CACHE_DIR_ENV, ResultCache
from repro.core.selector import Selector
from repro.hardware.machines import DESKTOP, SERVER

from tests.conftest import make_scale_program, make_stencil_program, scale_env


def env_factory(n):
    return scale_env(n, seed=1)


def fresh_evaluator(compiled, cache: ResultCache) -> Evaluator:
    return Evaluator(compiled, env_factory, result_cache=cache)


def gpu_config(compiled):
    config = default_configuration(compiled.training_info)
    config.selectors["Stencil"] = Selector.constant(1)
    return config


class TestAccounting:
    def test_memo_hits_do_not_inflate_counters(self, compiled_stencil):
        evaluator = fresh_evaluator(compiled_stencil, ResultCache(None))
        config = default_configuration(compiled_stencil.training_info)
        evaluator.evaluate(config, 256)
        evals, time_s = evaluator.evaluations, evaluator.tuning_time_s
        for _ in range(3):
            evaluator.evaluate(config, 256)
        assert evaluator.evaluations == evals == 1
        assert evaluator.tuning_time_s == time_s

    def test_disk_hits_do_not_inflate_counters(self, compiled_stencil, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = gpu_config(compiled_stencil)

        cold = fresh_evaluator(compiled_stencil, cache)
        cold_eval = cold.evaluate(config, 256)
        assert cold.computed_evaluations == 1

        warm = fresh_evaluator(compiled_stencil, ResultCache(str(tmp_path)))
        warm_eval = warm.evaluate(config, 256)
        # Logical accounting is replayed identically...
        assert warm.evaluations == cold.evaluations == 1
        assert warm.tuning_time_s == cold.tuning_time_s
        assert warm_eval == cold_eval
        # ...but nothing was physically simulated.
        assert warm.computed_evaluations == 0
        assert warm.result_cache.stats.hits == 1

    def test_compile_replay_matches_shared_jit_semantics(self, compiled_stencil):
        """Two evaluations sharing a kernel must pay the parse cost
        once (the Section 5.4 IR cache), even though each pure run
        executed against its own cold JIT model."""
        evaluator = fresh_evaluator(compiled_stencil, ResultCache(None))
        config = gpu_config(compiled_stencil)
        evaluator.evaluate(config, 256)
        first_time = evaluator.tuning_time_s
        jit = evaluator.jit
        parse_paid_once = jit.compile_count - jit.ir_hits
        evaluator.evaluate(config, 512)
        assert evaluator.jit.ir_hits > 0
        # Second size re-used the IR: the increment is strictly less
        # than paying the full parse again per compile.
        assert evaluator.tuning_time_s > first_time
        assert jit.compile_count - jit.ir_hits == parse_paid_once


class TestCorruption:
    def _entry_path(self, evaluator, config, size):
        cache = evaluator.result_cache
        config_json, _ = evaluator.key_for(config, size)
        key = evaluator._cache_key(config_json, size)
        return cache._path_for(key)

    @pytest.mark.parametrize(
        "garbage",
        [
            b"",  # empty file (interrupted write)
            b"{\"key\": ",  # truncated JSON
            b"\x00\xff\x13 not json at all",
            json.dumps({"key": None}).encode(),
            json.dumps([1, 2, 3]).encode(),
        ],
    )
    def test_corrupted_entry_is_ignored_not_fatal(
        self, compiled_stencil, tmp_path, garbage
    ):
        cache = ResultCache(str(tmp_path))
        evaluator = fresh_evaluator(compiled_stencil, cache)
        config = default_configuration(compiled_stencil.training_info)
        evaluator.evaluate(config, 128)

        path = self._entry_path(evaluator, config, 128)
        assert os.path.exists(path)
        with open(path, "wb") as handle:
            handle.write(garbage)

        fresh = fresh_evaluator(compiled_stencil, ResultCache(str(tmp_path)))
        evaluation = fresh.evaluate(config, 128)  # must not raise
        assert evaluation.time_s > 0
        assert fresh.computed_evaluations == 1  # recomputed
        if garbage:
            assert fresh.result_cache.stats.invalid >= 1
            assert fresh.result_cache.stats.collisions == 0

    def test_truncated_hash_collision_is_a_miss_not_invalid(
        self, compiled_stencil, tmp_path
    ):
        """A well-formed entry whose stored key differs (two keys
        sharing a truncated file hash) must count under ``collisions``
        + ``misses`` — never ``invalid``, which operators watch as a
        corruption signal."""
        cache = ResultCache(str(tmp_path))
        evaluator = fresh_evaluator(compiled_stencil, cache)
        config = default_configuration(compiled_stencil.training_info)
        evaluator.evaluate(config, 128)

        path = self._entry_path(evaluator, config, 128)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"key": {"other": "key"}, "payload": {"time_s": 1.0}}, handle)

        fresh_cache = ResultCache(str(tmp_path))
        fresh = fresh_evaluator(compiled_stencil, fresh_cache)
        evaluation = fresh.evaluate(config, 128)  # recomputes, no crash
        assert evaluation.time_s > 0
        assert fresh.computed_evaluations == 1
        assert fresh_cache.stats.collisions == 1
        assert fresh_cache.stats.misses >= 1
        assert fresh_cache.stats.invalid == 0

    def test_bad_payload_fields_force_recompute(self, compiled_stencil, tmp_path):
        cache = ResultCache(str(tmp_path))
        evaluator = fresh_evaluator(compiled_stencil, cache)
        config = default_configuration(compiled_stencil.training_info)
        evaluator.evaluate(config, 128)
        path = self._entry_path(evaluator, config, 128)
        entry = json.load(open(path))
        entry["payload"]["time_s"] = "not-a-number"
        json.dump(entry, open(path, "w"))

        fresh = fresh_evaluator(compiled_stencil, ResultCache(str(tmp_path)))
        assert fresh.evaluate(config, 128).time_s > 0
        assert fresh.computed_evaluations == 1


class TestIsolation:
    def test_disabled_cache_is_inert(self, compiled_stencil):
        cache = ResultCache(None)
        assert not cache.enabled
        assert cache.get({"any": "key"}) is None
        cache.put({"any": "key"}, {"x": 1})
        assert cache.stats.stores == 0

    def test_from_environment_disabled_values(self, monkeypatch):
        for value in ("", "0", "off", "none"):
            monkeypatch.setenv(CACHE_DIR_ENV, value)
            assert not ResultCache.from_environment().enabled
        monkeypatch.setenv(CACHE_DIR_ENV, "/tmp/somewhere")
        assert ResultCache.from_environment().enabled

    def test_different_machines_never_share_entries(self, tmp_path):
        program = make_stencil_program(5)
        desktop = compile_program(program, DESKTOP)
        server = compile_program(program, SERVER)
        assert program_fingerprint(desktop) != program_fingerprint(server)

        cache_dir = str(tmp_path)
        a = fresh_evaluator(desktop, ResultCache(cache_dir))
        config = default_configuration(desktop.training_info)
        a.evaluate(config, 256)

        b = fresh_evaluator(server, ResultCache(cache_dir))
        b.evaluate(default_configuration(server.training_info), 256)
        assert b.computed_evaluations == 1  # desktop entry not reused

    def test_different_programs_never_share_entries(self, tmp_path):
        cache_dir = str(tmp_path)
        stencil = compile_program(make_stencil_program(5), DESKTOP)
        scale = compile_program(make_scale_program(), DESKTOP)
        assert program_fingerprint(stencil) != program_fingerprint(scale)

    def test_accuracy_metric_is_part_of_the_key(self, compiled_stencil, tmp_path):
        """Entries written under one accuracy metric (or none) must
        never satisfy a session using another: the cached accuracy
        drives feasibility decisions."""
        cache_dir = str(tmp_path)
        config = default_configuration(compiled_stencil.training_info)

        plain = Evaluator(
            compiled_stencil, env_factory, result_cache=ResultCache(cache_dir)
        )
        assert plain.evaluate(config, 256).accuracy is None

        def strict_metric(env):
            return 1.0

        strict = Evaluator(
            compiled_stencil, env_factory,
            accuracy_fn=strict_metric, accuracy_target=0.5,
            result_cache=ResultCache(cache_dir),
        )
        evaluation = strict.evaluate(config, 256)
        assert strict.computed_evaluations == 1  # plain entry not reused
        assert evaluation.accuracy == 1.0
        assert not evaluation.feasible

        # And the accuracy-free session never sees the metric entry.
        plain_again = Evaluator(
            compiled_stencil, env_factory, result_cache=ResultCache(cache_dir)
        )
        assert plain_again.evaluate(config, 256).accuracy is None
        assert plain_again.computed_evaluations == 0  # its own entry hits

    def test_env_factory_data_is_part_of_the_key(self, compiled_stencil, tmp_path):
        """Factories differing only in a captured data seed must not
        share entries: the inputs (and so times/accuracies) differ."""
        cache_dir = str(tmp_path)
        config = default_configuration(compiled_stencil.training_info)

        def factory_for(data_seed):
            return lambda n: scale_env(n, seed=data_seed)

        a = Evaluator(
            compiled_stencil, factory_for(0), result_cache=ResultCache(cache_dir)
        )
        a.evaluate(config, 256)
        b = Evaluator(
            compiled_stencil, factory_for(1), result_cache=ResultCache(cache_dir)
        )
        b.evaluate(config, 256)
        assert b.computed_evaluations == 1  # seed-0 entry not reused

        # Same factory shape and data seed → entries are shared.
        c = Evaluator(
            compiled_stencil, factory_for(0), result_cache=ResultCache(cache_dir)
        )
        c.evaluate(config, 256)
        assert c.computed_evaluations == 0

    def test_execution_model_hash_is_stable_within_a_process(self):
        from repro.core.result_cache import execution_model_hash

        assert execution_model_hash() == execution_model_hash()
        assert len(execution_model_hash()) == 16

    def test_seed_is_part_of_the_key(self, compiled_stencil, tmp_path):
        cache_dir = str(tmp_path)
        config = default_configuration(compiled_stencil.training_info)
        a = Evaluator(
            compiled_stencil, env_factory, seed=0,
            result_cache=ResultCache(cache_dir),
        )
        a.evaluate(config, 256)
        b = Evaluator(
            compiled_stencil, env_factory, seed=1,
            result_cache=ResultCache(cache_dir),
        )
        b.evaluate(config, 256)
        assert b.computed_evaluations == 1

    def test_round_trip_preserves_payload(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = {"version": 1, "config": "{}", "size": 8}
        payload = {"time_s": 0.25, "accuracy": None,
                   "compile_events": [["abc", "gpu"]]}
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_from_environment_strips_whitespace(self, monkeypatch, tmp_path):
        """``REPRO_CACHE_DIR=" /dir "`` must mean ``/dir`` — not a
        whitespace-prefixed sibling that silently never matches the
        directory every other tool uses."""
        monkeypatch.setenv(CACHE_DIR_ENV, f"  {tmp_path} \n")
        cache = ResultCache.from_environment()
        assert cache.directory == str(tmp_path)
        key = {"version": 1, "config": "{}", "size": 1}
        cache.put(key, {"time_s": 1.0})
        assert ResultCache(str(tmp_path)).get(key) == {"time_s": 1.0}

    def test_from_environment_whitespace_only_is_disabled(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "   ")
        assert not ResultCache.from_environment().enabled


class TestPutFailures:
    def test_unserialisable_payload_counts_invalid_and_cleans_temp(
        self, tmp_path
    ):
        """A payload json can't encode must be swallowed (the cache is
        an accelerator, never a correctness dependency) but *counted*,
        and must not leave a temp file behind."""
        cache = ResultCache(str(tmp_path))
        key = {"version": 1, "config": "{}", "size": 8}
        cache.put(key, {"time_s": object()})
        assert cache.stats.invalid == 1
        assert cache.stats.stores == 0
        assert cache.get(key) is None
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_circular_payload_counts_invalid_and_cleans_temp(self, tmp_path):
        """The ValueError branch: a circular payload fails json
        serialisation after the temp file already exists — it must
        still be counted and the temp file removed."""
        cache = ResultCache(str(tmp_path))
        circular = {"time_s": 1.0}
        circular["self"] = circular
        cache.put({"version": 1, "size": 8}, circular)
        assert cache.stats.invalid == 1
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_unwritable_directory_is_silent(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        cache = ResultCache(str(blocker / "sub"))
        cache.put({"version": 1}, {"time_s": 1.0})
        assert cache.stats.stores == 0
        assert cache.stats.invalid == 0


class TestConcurrency:
    def test_many_threads_share_one_directory(self, tmp_path):
        """Hammer one directory from many threads mixing writers and
        readers: every get returns either a miss or the exact payload,
        the accounting adds up, and no temp files leak."""
        import threading

        cache = ResultCache(str(tmp_path))
        keys = [{"version": 1, "config": "{}", "size": n} for n in range(8)]
        payloads = [{"time_s": float(n), "accuracy": None} for n in range(8)]
        errors = []
        barrier = threading.Barrier(16)

        def worker(thread_id):
            try:
                barrier.wait(timeout=30)
                for round_no in range(25):
                    n = (thread_id + round_no) % len(keys)
                    if thread_id % 2 == 0:
                        cache.put(keys[n], payloads[n])
                    got = cache.get(keys[n])
                    if got is not None and got != payloads[n]:
                        errors.append((thread_id, n, got))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((thread_id, exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []
        # Exact accounting: every operation landed in exactly one bucket.
        stats = cache.stats
        assert stats.stores == 8 * 25  # every put succeeded
        assert stats.invalid == 0
        assert stats.hits + stats.misses == 16 * 25  # one lookup each
        # After the dust settles every entry is served from disk.
        fresh = ResultCache(str(tmp_path))
        for key, payload in zip(keys, payloads):
            assert fresh.get(key) == payload

    def test_corrupt_file_under_concurrency_counts_invalid(self, tmp_path):
        """A half-written/garbage entry is a miss for every reader and
        never crashes.  The first reader to notice quarantines the
        file, so later readers may see a clean miss instead of the
        corruption — but at least one reader counts it, exactly one
        quarantine happens, and every lookup still lands in a bucket."""
        import threading

        cache = ResultCache(str(tmp_path))
        key = {"version": 1, "config": "{}", "size": 99}
        cache.put(key, {"time_s": 1.0})
        path = cache._path_for(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ truncated")
        results = []

        def reader():
            results.append(cache.get(key))

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert results == [None] * 8
        assert 1 <= cache.stats.invalid <= 8
        assert cache.stats.misses == 8
        assert cache.stats.quarantined == 1
        assert os.path.exists(
            os.path.join(str(tmp_path), "quarantine", os.path.basename(path))
        )


class TestModelHashConcurrency:
    def test_concurrent_first_calls_hash_the_tree_once(self, monkeypatch):
        """Concurrent first requests in a long-lived daemon must not
        each walk and hash the whole source tree: the double-checked
        lock lets exactly one thread compute while the rest wait."""
        import hashlib
        import threading

        from repro.core import result_cache as module

        original = module._MODEL_HASH
        monkeypatch.setattr(module, "_MODEL_HASH", None)
        computations = []
        real_sha256 = hashlib.sha256

        def counting_sha256(*args, **kwargs):
            computations.append(threading.current_thread().name)
            return real_sha256(*args, **kwargs)

        monkeypatch.setattr(module.hashlib, "sha256", counting_sha256)
        barrier = threading.Barrier(8)
        results = []
        results_lock = threading.Lock()

        def worker():
            barrier.wait(timeout=30)
            value = module.execution_model_hash()
            with results_lock:
                results.append(value)

        threads = [
            threading.Thread(target=worker, name=f"hash-{i}") for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert len(results) == 8
        assert len(set(results)) == 1
        # One digest per tree walk: exactly one thread did the work.
        assert len(computations) == 1
        if original is not None:
            assert results[0] == original
        monkeypatch.setattr(module, "_MODEL_HASH", original)
