"""Integration tests for the evolutionary autotuner."""

import pytest

from repro.compiler.compile import compile_program
from repro.core.configuration import default_configuration
from repro.core.fitness import Evaluator
from repro.core.population import Candidate, Population
from repro.core.search import EvolutionaryTuner, autotune
from repro.errors import TuningError
from repro.hardware.machines import DESKTOP, SERVER

from tests.conftest import make_stencil_program, scale_env


@pytest.fixture(scope="module")
def compiled():
    return compile_program(make_stencil_program(5), DESKTOP)


def env_factory(n):
    return scale_env(n, seed=1)


class TestPopulation:
    def test_capacity_positive(self):
        with pytest.raises(TuningError):
            Population(0)

    def test_best_of_empty_rejected(self):
        with pytest.raises(TuningError):
            Population(3).best(10)

    def test_prune_keeps_fastest(self):
        population = Population(2)
        for time in (3.0, 1.0, 2.0):
            candidate = Candidate(config=None)  # type: ignore[arg-type]
            candidate.times[10] = time
            population.add(candidate)
        population.prune(10)
        assert len(population) == 2
        assert population.best(10).times[10] == 1.0

    def test_unevaluated_candidates_rank_last(self):
        population = Population(1)
        fast = Candidate(config=None)  # type: ignore[arg-type]
        fast.times[10] = 1.0
        population.add(fast)
        population.add(Candidate(config=None))  # type: ignore[arg-type]
        population.prune(10)
        assert population.best(10) is fast


class TestEvaluator:
    def test_results_cached(self, compiled):
        evaluator = Evaluator(compiled, env_factory)
        first = evaluator.evaluate(
            default_configuration(compiled.training_info), 256
        )
        count = evaluator.evaluations
        second = evaluator.evaluate(
            default_configuration(compiled.training_info), 256
        )
        assert evaluator.evaluations == count
        assert first.time_s == second.time_s

    def test_tuning_time_accumulates_compiles(self, compiled):
        evaluator = Evaluator(compiled, env_factory)
        config = default_configuration(compiled.training_info)
        config.selectors["Stencil"] = config.selectors["Stencil"].with_algorithm(0, 1)
        evaluator.evaluate(config, 256)
        # OpenCL kernel compiles dominate small tests (Section 5.4).
        assert evaluator.tuning_time_s > 1.0

    def test_accuracy_gate(self, compiled):
        evaluator = Evaluator(
            compiled, env_factory,
            accuracy_fn=lambda env: 1.0,
            accuracy_target=0.5,
        )
        result = evaluator.evaluate(
            default_configuration(compiled.training_info), 128
        )
        assert not result.feasible


class TestTuner:
    def test_improves_on_default(self, compiled):
        evaluator = Evaluator(compiled, env_factory)
        default_time = evaluator.evaluate(
            default_configuration(compiled.training_info), 200_000
        ).time_s
        report = autotune(compiled, env_factory, max_size=200_000, seed=5)
        assert report.best_time_s <= default_time

    def test_deterministic(self, compiled):
        a = autotune(compiled, env_factory, max_size=50_000, seed=9)
        b = autotune(compiled, env_factory, max_size=50_000, seed=9)
        assert a.best.to_json() == b.best.to_json()
        assert a.best_time_s == b.best_time_s

    def test_sizes_grow_to_max(self, compiled):
        tuner = EvolutionaryTuner(compiled, env_factory, max_size=100_000, seed=0)
        sizes = tuner.sizes
        assert sizes[-1] == 100_000
        assert sizes == sorted(sizes)

    def test_small_sizes_skipped_for_opencl(self, compiled):
        """Section 5.4: skip extremely small inputs when kernels must
        be JIT compiled."""
        tuner = EvolutionaryTuner(
            compiled, env_factory, max_size=2**20, min_size=2,
            skip_small_sizes_for_opencl=True,
        )
        assert min(tuner.sizes) >= 2**20 // 64

    def test_min_size_at_max_size_yields_single_final_size(self, compiled):
        """min_size == max_size must not duplicate the final size."""
        tuner = EvolutionaryTuner(
            compiled, env_factory, max_size=4096, min_size=4096,
            skip_small_sizes_for_opencl=False,
        )
        assert tuner.sizes == [4096]

    def test_min_size_above_max_size_yields_single_final_size(self, compiled):
        """min_size > max_size collapses the ramp (no duplicates, no
        sizes beyond max_size)."""
        tuner = EvolutionaryTuner(
            compiled, env_factory, max_size=1024, min_size=999_999,
            skip_small_sizes_for_opencl=False,
        )
        assert tuner.sizes == [1024]

    def test_sizes_never_contain_duplicates(self, compiled):
        for min_size, max_size in ((64, 64), (64, 65), (1024, 64), (1, 4096)):
            tuner = EvolutionaryTuner(
                compiled, env_factory, max_size=max_size, min_size=min_size,
                skip_small_sizes_for_opencl=False,
            )
            assert len(tuner.sizes) == len(set(tuner.sizes)), (
                f"duplicate sizes for min={min_size} max={max_size}: "
                f"{tuner.sizes}"
            )

    def test_growth_of_one_rejected(self, compiled):
        """growth == 1 used to loop forever; it must be a TuningError."""
        with pytest.raises(TuningError):
            EvolutionaryTuner(
                compiled, env_factory, max_size=1024, size_growth=1
            )
        with pytest.raises(TuningError):
            EvolutionaryTuner(
                compiled, env_factory, max_size=1024, size_growth=0
            )

    def test_tuning_still_works_at_degenerate_single_size(self, compiled):
        report = autotune(
            compiled, env_factory, max_size=2048, min_size=2048, seed=3,
            skip_small_sizes_for_opencl=False,
        )
        assert report.sizes == [2048]
        assert len(report.history) == 1

    def test_label_applied(self, compiled):
        report = autotune(compiled, env_factory, max_size=10_000, seed=1,
                          label="Desktop Config")
        assert report.best.label == "Desktop Config"

    def test_finds_the_gpu_for_compute_heavy_stencil(self, compiled):
        """On Desktop, the stencil's best backend is OpenCL; the seeded
        population must discover it at the final size."""
        report = autotune(compiled, env_factory, max_size=400_000, seed=2)
        index = report.best.select_index("Stencil", 400_000)
        choice = compiled.transform("Stencil").exec_choices[
            min(index, compiled.transform("Stencil").num_choices - 1)
        ]
        assert choice.uses_opencl

    def test_tuning_report_counts(self, compiled):
        report = autotune(compiled, env_factory, max_size=20_000, seed=0)
        assert report.evaluations > 0
        assert report.tuning_time_s > 0
        assert len(report.history) == len(report.sizes)
