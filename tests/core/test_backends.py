"""Unit tests for the pluggable evaluation-backend layer."""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps.registry import benchmark, canonical_env_factory
from repro.compiler.compile import compile_program
from repro.core.backends import (
    BACKEND_ENV,
    EvaluationRequest,
    ProcessBackendUnavailable,
    ProcessEvaluator,
    create_evaluator,
    default_backend,
    evaluate_request,
    resolve_backend,
    resolve_process_target,
)
from repro.core.configuration import Configuration
from repro.core.fitness import Evaluator
from repro.core.parallel import ParallelEvaluator
from repro.core.result_cache import ResultCache, execution_model_hash
from repro.core.search import TuningReport, report_from_payload, report_to_payload
from repro.core.selector import Selector
from repro.errors import TuningError
from repro.hardware.machines import DESKTOP

from tests.conftest import scale_env


@pytest.fixture()
def strassen_desktop():
    spec = benchmark("Strassen")
    return compile_program(spec.build_program(), DESKTOP)


class TestBackendSelection:
    def test_default_backend_unset_is_auto(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert default_backend() == "auto"

    @pytest.mark.parametrize("raw,expected", [
        ("serial", "serial"),
        ("thread", "thread"),
        ("process", "process"),
        ("cluster", "cluster"),
        ("  Process \n", "process"),
        ("THREAD", "thread"),
        ("auto", "auto"),
        ("", "auto"),
    ])
    def test_default_backend_env_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(BACKEND_ENV, raw)
        assert default_backend() == expected

    def test_default_backend_warns_once_on_unrecognised_value(self, monkeypatch):
        """A typo in the env knob must not be silently swallowed: the
        first call emits a warning naming the bad value and the valid
        names, then falls back to auto; repeats stay quiet."""
        from repro.core import backends

        monkeypatch.setenv(BACKEND_ENV, "bogus")
        monkeypatch.setattr(backends, "_WARNED_BACKEND_VALUES", set())
        with pytest.warns(UserWarning, match="bogus") as caught:
            assert default_backend() == "auto"
        assert "serial" in str(caught[0].message)
        assert "cluster" in str(caught[0].message)
        # One-shot: the same bad value never warns twice.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert default_backend() == "auto"

    def test_explicit_unrecognised_backend_still_raises(self, monkeypatch):
        """The lenient env fallback must not leak into explicit
        arguments: backend="bogus" is an error, never a warning."""
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        with pytest.raises(TuningError, match="unknown evaluation backend"):
            resolve_backend("bogus")

    def test_resolve_explicit_is_forced(self):
        assert resolve_backend("process") == ("process", True)
        assert resolve_backend(" Serial ") == ("serial", True)
        assert resolve_backend("auto") == ("auto", False)

    def test_resolve_none_reads_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert resolve_backend(None) == ("thread", False)

    def test_resolve_rejects_unknown_explicit_names(self):
        with pytest.raises(TuningError, match="unknown evaluation backend"):
            resolve_backend("fleet")


class TestCreateEvaluator:
    def test_auto_picks_serial_then_thread(self, monkeypatch, compiled_stencil):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        env = lambda n: scale_env(n, seed=1)
        serial = create_evaluator(compiled_stencil, env, workers=1)
        pooled = create_evaluator(compiled_stencil, env, workers=3)
        try:
            assert type(serial) is Evaluator
            assert isinstance(pooled, ParallelEvaluator)
        finally:
            serial.close()
            pooled.close()

    def test_forced_serial_ignores_worker_count(self, compiled_stencil):
        evaluator = create_evaluator(
            compiled_stencil, lambda n: scale_env(n, seed=1),
            backend="serial", workers=8,
        )
        assert type(evaluator) is Evaluator

    def test_forced_process_on_registry_app(self, strassen_desktop):
        with create_evaluator(
            strassen_desktop, canonical_env_factory("Strassen"),
            backend="process", workers=2, result_cache=ResultCache(None),
        ) as evaluator:
            assert isinstance(evaluator, ProcessEvaluator)
            assert evaluator.target.app == "Strassen"
            assert evaluator.target.machine == "Desktop"

    def test_forced_process_on_unregistered_program_raises(self, compiled_stencil):
        with pytest.raises(ProcessBackendUnavailable, match="not a registered"):
            create_evaluator(
                compiled_stencil, lambda n: scale_env(n, seed=1),
                backend="process", workers=2,
            )

    def test_forced_process_with_noncanonical_env_raises(self, strassen_desktop):
        spec = benchmark("Strassen")
        with pytest.raises(ProcessBackendUnavailable, match="canonical_env_factory"):
            create_evaluator(
                strassen_desktop, lambda n: spec.make_env(n, 0),
                backend="process", workers=2,
            )

    def test_forced_process_with_wrong_benchmarks_canonical_env_raises(
        self, strassen_desktop
    ):
        """Another benchmark's canonical factory must not pass: workers
        would rebuild Strassen inputs while the requester's local
        fallback path evaluates SVD inputs."""
        with pytest.raises(ProcessBackendUnavailable, match="canonical_env_factory"):
            create_evaluator(
                strassen_desktop, canonical_env_factory("SVD"),
                backend="process", workers=2,
            )

    def test_env_selected_process_falls_back_for_unregistered_programs(
        self, monkeypatch, compiled_stencil
    ):
        """The env knob is global: it must degrade, not break, tuning of
        hand-built programs."""
        monkeypatch.setenv(BACKEND_ENV, "process")
        env = lambda n: scale_env(n, seed=1)
        pooled = create_evaluator(compiled_stencil, env, workers=3)
        single = create_evaluator(compiled_stencil, env, workers=1)
        try:
            assert isinstance(pooled, ParallelEvaluator)
            assert type(single) is Evaluator
        finally:
            pooled.close()
            single.close()

    def test_forced_cluster_on_registry_app(self, strassen_desktop):
        from repro.core.backends import ClusterEvaluator

        with create_evaluator(
            strassen_desktop, canonical_env_factory("Strassen"),
            backend="cluster", workers=2, result_cache=ResultCache(None),
        ) as evaluator:
            assert isinstance(evaluator, ClusterEvaluator)
            assert evaluator.target.app == "Strassen"

    def test_forced_cluster_on_unregistered_program_raises(self, compiled_stencil):
        """The cluster backend ships requests to workers that rebuild
        from the registry, so it shares the process backend's
        registered-program requirement."""
        with pytest.raises(ProcessBackendUnavailable, match="not a registered"):
            create_evaluator(
                compiled_stencil, lambda n: scale_env(n, seed=1),
                backend="cluster", workers=2,
            )

    def test_env_selected_cluster_falls_back_for_unregistered_programs(
        self, monkeypatch, compiled_stencil
    ):
        monkeypatch.setenv(BACKEND_ENV, "cluster")
        env = lambda n: scale_env(n, seed=1)
        pooled = create_evaluator(compiled_stencil, env, workers=3)
        try:
            assert isinstance(pooled, ParallelEvaluator)
        finally:
            pooled.close()


class TestProcessTarget:
    def test_resolves_canonical_evaluation(self, strassen_desktop):
        target = resolve_process_target(
            strassen_desktop, canonical_env_factory("Strassen"), None
        )
        assert (target.app, target.machine) == ("Strassen", "Desktop")

    def test_rejects_wrong_accuracy_function(self, strassen_desktop):
        with pytest.raises(ProcessBackendUnavailable, match="accuracy"):
            resolve_process_target(
                strassen_desktop, canonical_env_factory("Strassen"),
                lambda env: 0.0,
            )


class TestEvaluateRequest:
    """The worker entry point, exercised in-process."""

    def _request(self, compiled, config, size=64, **overrides):
        from repro.core.fitness import program_fingerprint

        fields = dict(
            app="Strassen",
            machine="Desktop",
            config_json=config.to_json(),
            size=size,
            seed=1,
            fingerprint=program_fingerprint(compiled),
            model_hash=execution_model_hash(),
            cache_dir=None,
        )
        fields.update(overrides)
        return EvaluationRequest(**fields)

    def test_matches_local_compute(self, strassen_desktop):
        from repro.core.configuration import default_configuration

        config = default_configuration(strassen_desktop.training_info)
        local = Evaluator(
            strassen_desktop, canonical_env_factory("Strassen"),
            seed=1, result_cache=ResultCache(None),
        ).compute(config, 64)
        result = evaluate_request(self._request(strassen_desktop, config))
        assert result.time_s == local.time_s
        assert result.compile_events == local.compile_events
        assert result.accuracy == local.accuracy

    def test_fingerprint_mismatch_fails_loudly(self, strassen_desktop):
        from repro.core.configuration import default_configuration

        config = default_configuration(strassen_desktop.training_info)
        request = self._request(
            strassen_desktop, config, fingerprint="deadbeef" * 3
        )
        with pytest.raises(TuningError, match="fingerprint"):
            evaluate_request(request)

    def test_model_hash_mismatch_fails_loudly(self, strassen_desktop):
        from repro.core.configuration import default_configuration

        config = default_configuration(strassen_desktop.training_info)
        request = self._request(
            strassen_desktop, config, model_hash="0" * 16
        )
        with pytest.raises(TuningError, match="model"):
            evaluate_request(request)

    def test_request_is_a_frozen_primitive_bundle(self, strassen_desktop):
        """Everything crossing the pipe must be picklable primitives."""
        from repro.core.configuration import default_configuration
        import pickle

        config = default_configuration(strassen_desktop.training_info)
        request = self._request(strassen_desktop, config)
        clone = pickle.loads(pickle.dumps(request))
        assert clone == request
        for value in dataclasses.asdict(request).values():
            assert value is None or isinstance(value, (str, int))


class TestProcessEvaluatorProtocol:
    def test_prefetch_then_evaluate_joins_worker_results(self, strassen_desktop):
        from repro.core.configuration import default_configuration

        with create_evaluator(
            strassen_desktop, canonical_env_factory("Strassen"),
            backend="process", workers=2, seed=1,
            result_cache=ResultCache(None),
        ) as evaluator:
            config = default_configuration(strassen_desktop.training_info)
            evaluator.prefetch([config], 64)
            assert len(evaluator._inflight) == 1
            joined = evaluator.evaluate(config, 64)
            reference = Evaluator(
                strassen_desktop, canonical_env_factory("Strassen"),
                seed=1, result_cache=ResultCache(None),
            ).evaluate(config, 64)
            assert joined == reference
            assert evaluator.evaluations == 1
            assert not evaluator._inflight

    def test_drop_speculation_harvests_finished_results(self, strassen_desktop):
        """Completed speculative work survives a drop via the pure memo
        (parity with the thread backend, whose workers write the memo
        directly)."""
        from repro.core.configuration import default_configuration

        with create_evaluator(
            strassen_desktop, canonical_env_factory("Strassen"),
            backend="process", workers=2, seed=1,
            result_cache=ResultCache(None),
        ) as evaluator:
            config = default_configuration(strassen_desktop.training_info)
            evaluator.prefetch([config], 64)
            key = evaluator.key_for(config, 64)
            future, _lane = evaluator._inflight[key]
            future.result()  # let the worker finish
            evaluator.drop_speculation()
            assert not evaluator._inflight
            assert key in evaluator._pure

    def test_drop_speculation_discards_queued_work(self, strassen_desktop):
        from repro.core.configuration import default_configuration

        with create_evaluator(
            strassen_desktop, canonical_env_factory("Strassen"),
            backend="process", workers=2, seed=1,
            result_cache=ResultCache(None),
        ) as evaluator:
            config = default_configuration(strassen_desktop.training_info)
            evaluator.prefetch([config], 64)
            evaluator.drop_speculation()
            assert not evaluator._inflight
            # A later evaluate still works (local compute path).
            assert evaluator.evaluate(config, 64).time_s > 0
            assert evaluator.evaluations == 1

    def test_single_worker_never_spawns_a_pool(self, strassen_desktop):
        with create_evaluator(
            strassen_desktop, canonical_env_factory("Strassen"),
            backend="process", workers=1, result_cache=ResultCache(None),
        ) as evaluator:
            from repro.core.configuration import default_configuration

            config = default_configuration(strassen_desktop.training_info)
            evaluator.prefetch([config], 64)
            assert evaluator._executor is None
            assert evaluator.evaluate(config, 64).time_s > 0


class TestReportPayloadRoundTrip:
    def test_round_trip(self):
        report = TuningReport(
            best=Configuration(
                program_name="Strassen",
                selectors={"MatMul": Selector.constant(2)},
                tunables={"cutoff": 128},
                label="Desktop Config",
            ),
            best_time_s=1.5e-3,
            tuning_time_s=12.25,
            evaluations=42,
            sizes=[64, 256, 512],
            history=[2e-3, 1.7e-3, 1.5e-3],
            computed_evaluations=40,
        )
        clone = report_from_payload(report_to_payload(report))
        assert clone.best.to_json() == report.best.to_json()
        assert clone.best_time_s == report.best_time_s
        assert clone.tuning_time_s == report.tuning_time_s
        assert clone.evaluations == report.evaluations
        assert clone.sizes == report.sizes
        assert clone.history == report.history
        assert clone.computed_evaluations == report.computed_evaluations

    def test_payload_is_primitive(self):
        report = TuningReport(
            best=Configuration(program_name="X"),
            best_time_s=1.0,
            tuning_time_s=2.0,
            evaluations=3,
            sizes=[4],
            history=[1.0],
        )
        payload = report_to_payload(report)
        import json

        json.dumps(payload)  # JSON-safe, hence picklable primitives
