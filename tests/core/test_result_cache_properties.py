"""Property-based tests for the cross-session result cache.

The fixed-fixture suite in ``test_result_cache.py`` checks specific
scenarios; these properties sweep the input space: arbitrary pure
outcomes must round-trip exactly, entry addressing must not depend on
dict insertion order (keys are canonicalised with sorted JSON), and
arbitrarily corrupted entry files must read as misses — never crash,
never serve wrong payloads.
"""

from __future__ import annotations

import random
import tempfile

import pytest

pytest.importorskip("hypothesis")  # optional test-only dependency

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result_cache import ResultCache

#: JSON-safe scalars (floats restricted to finite: the cache stores
#: simulated times/accuracies, and NaN would break == comparison).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=24),
)

#: Cache keys as the evaluator builds them: flat string-keyed dicts of
#: scalars (program/machine/fingerprint/config/size/seed fields).
_keys = st.dictionaries(
    st.text(min_size=1, max_size=12), _scalars, min_size=1, max_size=8
)

#: Payloads shaped like pure evaluation outcomes.
_payloads = st.fixed_dictionaries(
    {
        "time_s": st.floats(
            min_value=0, allow_nan=False, allow_infinity=False
        ),
        "accuracy": st.one_of(
            st.none(),
            st.floats(allow_nan=False, allow_infinity=False),
        ),
        "compile_events": st.lists(
            st.tuples(st.text(max_size=16), st.text(max_size=16)).map(list),
            max_size=6,
        ),
    }
)


@given(key=_keys, payload=_payloads)
@settings(max_examples=60, deadline=None)
def test_round_trip_of_arbitrary_pure_outcomes(key, payload):
    """put then get returns the exact payload for any key/payload."""
    with tempfile.TemporaryDirectory() as directory:
        cache = ResultCache(directory)
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1


@given(key=_keys, order_seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_key_stability_under_dict_ordering_permutations(key, order_seed):
    """A key dict built in any insertion order addresses one entry."""
    items = list(key.items())
    random.Random(order_seed).shuffle(items)
    permuted = dict(items)
    assert permuted == key  # same mapping, possibly different order
    with tempfile.TemporaryDirectory() as directory:
        cache = ResultCache(directory)
        assert cache._path_for(permuted) == cache._path_for(key)
        cache.put(key, {"time_s": 1.0})
        assert cache.get(permuted) == {"time_s": 1.0}


@given(key=_keys, corruption=st.binary(max_size=64))
@settings(max_examples=60, deadline=None)
def test_corrupt_entry_files_read_as_misses(key, corruption):
    """Arbitrary bytes in an entry file: a miss, counted, not a crash."""
    with tempfile.TemporaryDirectory() as directory:
        cache = ResultCache(directory)
        cache.put(key, {"time_s": 2.0})
        path = cache._path_for(key)
        original = open(path, "rb").read()
        if corruption == original:  # the one content that stays valid
            return
        with open(path, "wb") as handle:
            handle.write(corruption)
        fresh = ResultCache(directory)
        assert fresh.get(key) is None
        assert fresh.stats.misses == 1
        assert fresh.stats.invalid == 1
        # The slot is overwritable afterwards (self-healing).
        fresh.put(key, {"time_s": 3.0})
        assert fresh.get(key) == {"time_s": 3.0}


@given(key=_keys, other=_keys)
@settings(max_examples=60, deadline=None)
def test_distinct_keys_never_alias(key, other):
    """Two different key dicts must never serve each other's payloads."""
    if key == other:
        return
    with tempfile.TemporaryDirectory() as directory:
        cache = ResultCache(directory)
        cache.put(key, {"time_s": 1.0})
        looked_up = cache.get(other)
        # Either a clean miss, or (on the astronomically unlikely
        # 128-bit prefix collision) the key-mismatch check rejects it.
        assert looked_up is None


@given(key=_keys, payload=_payloads)
@settings(max_examples=30, deadline=None)
def test_disabled_cache_ignores_everything(key, payload):
    cache = ResultCache(None)
    cache.put(key, payload)
    assert cache.get(key) is None
    assert cache.stats.stores == 0
    assert cache.stats.hits == 0


@given(key=_keys)
@settings(max_examples=30, deadline=None)
def test_truncated_entries_are_tolerated(key):
    """Every prefix truncation of a valid entry file reads as a miss."""
    with tempfile.TemporaryDirectory() as directory:
        cache = ResultCache(directory)
        cache.put(key, {"time_s": 4.0, "accuracy": None})
        path = cache._path_for(key)
        content = open(path, "rb").read()
        for cut in (0, 1, len(content) // 2, len(content) - 1):
            with open(path, "wb") as handle:
                handle.write(content[:cut])
            assert ResultCache(directory).get(key) is None
        # Restoring the full content restores the hit.
        with open(path, "wb") as handle:
            handle.write(content)
        assert ResultCache(directory).get(key) == {
            "time_s": 4.0, "accuracy": None,
        }
