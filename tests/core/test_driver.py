"""Tests for the asynchronous tuning driver: scheduling, lifecycle,
checkpoint/resume and progress reporting."""

from __future__ import annotations

import os

import pytest

from repro.api.config import TunerConfig
from repro.apps.registry import benchmark, canonical_env_factory
from repro.compiler.compile import compile_program
from repro.core.driver import CheckpointStore, TuningDriver
from repro.core.parallel import ParallelEvaluator
from repro.core.result_cache import ResultCache
from repro.core.search import EvolutionaryTuner, TuningReport, autotune
from repro.errors import TuningError
from repro.hardware.machines import DESKTOP

from tests.conftest import make_stencil_program, scale_env

APP = "SeparableConv."
APP_SIZE = 96


def env_factory(n):
    return scale_env(n, seed=1)


def make_tuner(checkpoint_store=None, result_cache=None, **config_overrides):
    spec = benchmark(APP)
    compiled = compile_program(spec.build_program(), DESKTOP)
    config_overrides.setdefault("resume", False)
    return EvolutionaryTuner(
        compiled,
        canonical_env_factory(APP),
        max_size=APP_SIZE,
        seed=1,
        accuracy_fn=spec.accuracy_fn,
        accuracy_target=spec.accuracy_target,
        config=TunerConfig.from_env(**config_overrides),
        result_cache=result_cache if result_cache is not None else ResultCache(None),
        checkpoint_store=checkpoint_store,
    )


def report_key(report: TuningReport):
    return (
        report.best.to_json(),
        report.best_time_s,
        report.tuning_time_s,
        report.evaluations,
        report.sizes,
        report.history,
        report.strategy,
        report.seed,
    )


def make_driver(evaluator, strategy_name="evolutionary", **driver_kwargs):
    """A standalone driver over the benchmark app (plan built via a
    throwaway tuner, whose own evaluator is closed immediately)."""
    from repro.core.strategies import create_strategy

    planner = make_tuner(backend="serial")
    plan = planner._plan
    compiled = planner._compiled
    planner.close()
    driver_kwargs.setdefault("checkpoint_store", CheckpointStore(None))
    driver_kwargs.setdefault("resume", False)
    return TuningDriver(
        compiled,
        evaluator,
        create_strategy(strategy_name, plan),
        plan,
        **driver_kwargs,
    )


class TestScheduling:
    def test_driver_keeps_two_evaluations_in_flight_per_worker(self):
        """The acceptance bar: on a pooled backend the driver queues at
        least ``2 x workers`` speculative evaluations while committing.
        """
        workers = 2
        observed = []

        class Recording(ParallelEvaluator):
            def prefetch(self, configs, size):
                super().prefetch(configs, size)
                observed.append(self.inflight())

        spec = benchmark(APP)
        compiled = compile_program(spec.build_program(), DESKTOP)
        evaluator = Recording(
            compiled,
            canonical_env_factory(APP),
            workers=workers,
            accuracy_fn=spec.accuracy_fn,
            accuracy_target=spec.accuracy_target,
            seed=1,
            result_cache=ResultCache(None),
        )
        with make_driver(evaluator, inflight_per_worker=2) as driver:
            report = driver.run()
        assert report.evaluations > 0
        assert max(observed) >= 2 * workers, (
            f"peak speculative in-flight {max(observed)} never reached "
            f"2 evaluations per worker ({2 * workers})"
        )
        assert driver.stats.max_pending >= 2 * workers

    def test_driver_stats_track_the_pipeline(self):
        tuner = make_tuner(workers=4, backend="thread")
        try:
            report = tuner.tune()
        finally:
            tuner.close()
        stats = tuner.driver.stats
        assert stats.committed == len(tuner.driver._journal)
        assert stats.proposed == stats.committed + stats.discarded
        # The evolutionary strategy admits children, each admission
        # discarding the speculative tail.
        assert stats.invalidations > 0
        assert report.evaluations <= stats.committed  # memoised recommits

    def test_stalled_strategy_is_reported(self):
        from repro.core.strategies.base import SearchStrategy

        class Stalled(SearchStrategy):
            name = "stalled"

            def propose(self, k):
                return []

            def observe(self, proposal, evaluation):
                return False

            @property
            def finished(self):
                return False

            @property
            def history(self):
                return []

            def result(self):
                raise AssertionError

            def state_payload(self):
                return {}

            def restore_state(self, payload):
                pass

        planner = make_tuner(backend="serial")
        plan = planner._plan
        with TuningDriver(
            planner._compiled,
            planner.evaluator,
            Stalled(plan),
            plan,
            checkpoint_store=CheckpointStore(None),
            resume=False,
        ) as driver:
            with pytest.raises(TuningError, match="stalled"):
                driver.run()
        planner.close()


class TestLifecycle:
    def test_close_is_idempotent(self):
        tuner = make_tuner(workers=4, backend="thread")
        tuner.tune()
        tuner.close()
        tuner.close()  # must not raise
        tuner.close()

    def test_tuner_context_manager_closes_on_exception(self, monkeypatch):
        closed = []
        with pytest.raises(RuntimeError):
            with make_tuner(workers=2, backend="thread") as tuner:
                monkeypatch.setattr(
                    tuner.driver,
                    "close",
                    lambda real=tuner.driver.close: (closed.append(True), real())[1],
                )
                raise RuntimeError("boom")
        assert closed == [True]

    def test_driver_context_manager_releases_evaluator(self):
        tuner = make_tuner(workers=2, backend="thread")
        with tuner.driver as driver:
            driver.run()
        assert tuner.evaluator._executor is None  # pool shut down
        tuner.close()

    def test_run_after_close_raises_but_cached_report_survives(self):
        tuner = make_tuner(backend="serial")
        report = tuner.tune()
        tuner.close()
        assert tuner.tune() is report  # memoised result, no new search
        fresh = make_tuner(backend="serial")
        fresh.close()
        with pytest.raises(TuningError, match="closed"):
            fresh.tune()


class _Interrupted(Exception):
    pass


def _interruptable_tuner(store, fail_after, backend="serial", workers=1):
    tuner = make_tuner(
        backend=backend,
        workers=workers,
        checkpoint_store=store,
        checkpoint_every=16,
        resume=True,
    )
    if fail_after is not None:
        evaluator = tuner.evaluator
        state = {"count": 0}
        real = evaluator.evaluate

        def bomb(config, size):
            state["count"] += 1
            if state["count"] > fail_after:
                raise _Interrupted()
            return real(config, size)

        evaluator.evaluate = bomb  # type: ignore[method-assign]
    return tuner


class TestCheckpointResume:
    @pytest.fixture(scope="class")
    def uninterrupted(self):
        return autotune(
            compile_program(benchmark(APP).build_program(), DESKTOP),
            canonical_env_factory(APP),
            max_size=APP_SIZE,
            seed=1,
            accuracy_fn=benchmark(APP).accuracy_fn,
            accuracy_target=benchmark(APP).accuracy_target,
            config=TunerConfig.from_env(backend="serial", resume=False),
            result_cache=ResultCache(None),
        )

    @pytest.mark.parametrize("resume_backend", ["serial", "thread", "process"])
    def test_killed_session_resumes_byte_identical(
        self, tmp_path, uninterrupted, resume_backend
    ):
        """Kill a session mid-search; resuming — on any backend — must
        produce the byte-identical report of an uninterrupted run."""
        store = CheckpointStore(str(tmp_path))
        tuner = _interruptable_tuner(store, fail_after=90)
        with pytest.raises(_Interrupted):
            with tuner:
                tuner.tune()
        files = os.listdir(tmp_path)
        assert files, "no checkpoint was written before the kill"

        workers = 2 if resume_backend != "serial" else 1
        with _interruptable_tuner(
            store, fail_after=None, backend=resume_backend, workers=workers
        ) as resumed_tuner:
            resumed = resumed_tuner.tune()
            assert resumed_tuner.driver.stats.replayed > 0
        assert report_key(resumed) == report_key(uninterrupted)

    def test_completed_session_resumes_from_final_checkpoint(
        self, tmp_path, uninterrupted
    ):
        store = CheckpointStore(str(tmp_path))
        with _interruptable_tuner(store, fail_after=None) as tuner:
            first = tuner.tune()
        with _interruptable_tuner(store, fail_after=None) as tuner:
            replayed = tuner.tune()
            # A finished checkpoint restores the report without
            # committing a single evaluation.
            assert tuner.evaluator.evaluations == 0
        assert report_key(replayed) == report_key(first)
        assert report_key(replayed) == report_key(uninterrupted)

    def test_resume_off_ignores_checkpoints(self, tmp_path, uninterrupted):
        store = CheckpointStore(str(tmp_path))
        with _interruptable_tuner(store, fail_after=None) as tuner:
            tuner.tune()
        fresh = make_tuner(
            backend="serial", checkpoint_store=store, resume=False
        )
        with fresh:
            report = fresh.tune()
            assert fresh.driver.stats.replayed == 0
            assert fresh.evaluator.evaluations > 0
        assert report_key(report) == report_key(uninterrupted)

    def test_corrupt_checkpoint_is_ignored(self, tmp_path, uninterrupted):
        store = CheckpointStore(str(tmp_path))
        tuner = _interruptable_tuner(store, fail_after=90)
        with pytest.raises(_Interrupted):
            with tuner:
                tuner.tune()
        for name in os.listdir(tmp_path):
            (tmp_path / name).write_text("{ not json")
        with _interruptable_tuner(store, fail_after=None) as tuner:
            report = tuner.tune()
            assert tuner.driver.stats.replayed == 0  # started over
        assert report_key(report) == report_key(uninterrupted)

    def test_incompatible_strategy_state_restarts_cleanly(
        self, tmp_path, uninterrupted
    ):
        """A checkpoint whose strategy state no longer restores (older
        layout, missing keys) must yield a pristine fresh session, not
        a half-restored strategy."""
        store = CheckpointStore(str(tmp_path))
        tuner = _interruptable_tuner(store, fail_after=None)
        identity = tuner._driver._identity()
        store.save(
            identity,
            {
                "complete": False,
                "journal": [],
                # Valid JSON, right strategy name, missing every other
                # key: restore_state raises after mutating some fields.
                "strategy_state": {"strategy": "evolutionary", "phase": "members"},
            },
        )
        with tuner:
            report = tuner.tune()
            assert tuner.driver.stats.replayed == 0
        assert report_key(report) == report_key(uninterrupted)

    def test_resume_without_store_warns_once(self, monkeypatch, capsys):
        import repro.core.driver as driver_module

        monkeypatch.setattr(driver_module, "_RESUME_WARNED", False)
        with make_tuner(
            backend="serial", checkpoint_store=CheckpointStore(None), resume=True
        ) as tuner:
            tuner.tune()
        err = capsys.readouterr().err
        assert "resume requested but checkpointing is disabled" in err

    def test_checkpoints_are_keyed_by_strategy_and_seed(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with _interruptable_tuner(store, fail_after=None) as tuner:
            tuner.tune()
        # A different strategy on the same store must not collide.
        other = make_tuner(
            backend="serial",
            checkpoint_store=store,
            resume=True,
            strategy="hillclimb",
        )
        with other:
            report = other.tune()
        assert report.strategy == "hillclimb"
        assert other.evaluator.evaluations > 0  # genuinely searched

    def test_store_from_environment_respects_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = CheckpointStore.from_environment()
        assert store.enabled
        assert store.directory == os.path.join(str(tmp_path), "checkpoints")
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert not CheckpointStore.from_environment().enabled

    def test_store_save_and_clear_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        identity = {"program": "p", "seed": 1}
        store.save(identity, {"complete": False, "journal": []})
        entry = store.load(identity)
        assert entry is not None and entry["journal"] == []
        assert store.load({"program": "other", "seed": 1}) is None
        store.clear(identity)
        assert store.load(identity) is None


class TestProgress:
    def test_one_line_per_round_plus_summary(self):
        lines = []
        spec = benchmark(APP)
        compiled = compile_program(spec.build_program(), DESKTOP)
        report = autotune(
            compiled,
            canonical_env_factory(APP),
            max_size=APP_SIZE,
            seed=1,
            accuracy_fn=spec.accuracy_fn,
            accuracy_target=spec.accuracy_target,
            config=TunerConfig.from_env(backend="serial", resume=False),
            result_cache=ResultCache(None),
            progress=lines.append,
        )
        rounds = [line for line in lines if " round " in line]
        assert len(rounds) == len(report.sizes)
        assert all("proposed=" in line and "best=" in line for line in rounds)
        assert any("finished" in line for line in lines)
        assert all("strategy=evolutionary" in line for line in rounds)

    def test_silent_by_default(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_TUNER_PROGRESS", raising=False)
        compiled = compile_program(make_stencil_program(5), DESKTOP)
        autotune(
            compiled,
            env_factory,
            max_size=2048,
            seed=1,
            config=TunerConfig.from_env(backend="serial", resume=False),
            result_cache=ResultCache(None),
        )
        assert "[tune]" not in capsys.readouterr().err
