"""Tests for the error hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        subclasses = [
            errors.LanguageError,
            errors.CompileError,
            errors.KernelGenError,
            errors.ScheduleError,
            errors.RuntimeFault,
            errors.DeviceError,
            errors.ConfigurationError,
            errors.TuningError,
            errors.ExperimentError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_subsystem_nesting(self):
        assert issubclass(errors.KernelGenError, errors.CompileError)
        assert issubclass(errors.ScheduleError, errors.CompileError)
        assert issubclass(errors.DeviceError, errors.RuntimeFault)

    def test_single_except_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.TuningError("no progress")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_machines_exported(self):
        assert repro.DESKTOP.codename == "Desktop"
        assert repro.SERVER.codename == "Server"
        assert repro.LAPTOP.codename == "Laptop"

    def test_core_package_exports(self):
        from repro import core
        for name in core.__all__:
            assert hasattr(core, name)

    def test_lang_package_exports(self):
        from repro import lang
        for name in lang.__all__:
            assert hasattr(lang, name)

    def test_runtime_package_exports(self):
        from repro import runtime
        for name in runtime.__all__:
            assert hasattr(runtime, name)

    def test_hardware_package_exports(self):
        from repro import hardware
        for name in hardware.__all__:
            assert hasattr(hardware, name)

    def test_apps_package_exports(self):
        from repro import apps
        for name in apps.__all__:
            assert hasattr(apps, name)
