"""Determinism lockdown for the parallel tuning engine.

The contract under test: ``EvolutionaryTuner`` with N speculative
workers — on *any* evaluation backend (``serial``, ``thread``,
``process``, ``cluster``) — produces a :class:`TuningReport`
*identical* to the serial tuner: same winning configuration
(byte-for-byte JSON), same history, same evaluation count, same
virtual tuning time — for every registered benchmark at small sizes;
and a warm disk cache replays a cold session exactly (while physically
simulating nothing).  Cluster legs run the full TCP wire protocol
against an in-process loopback fleet; robustness variants (a worker
killed mid-run, a worker joining late) live in ``tests/cluster``.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.api.config import TunerConfig
from repro.apps.registry import all_benchmarks, benchmark, canonical_env_factory
from repro.compiler.compile import compile_program
from repro.core.backends import BACKEND_NAMES
from repro.core.parallel import ParallelEvaluator
from repro.core.result_cache import ResultCache
from repro.core.search import EvolutionaryTuner, TuningReport, autotune
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER

from tests.conftest import make_stencil_program, scale_env

#: Small per-app tuning sizes keeping the whole suite fast.
SMALL_SIZES = {
    "Black-Sholes": 4096,
    "Poisson2D SOR": 64,
    "SeparableConv.": 96,
    "Sort": 4096,
    "Strassen": 64,
    "SVD": 48,
    "Tridiagonal Solver": 256,
}

APP_NAMES = [spec.name for spec in all_benchmarks()]

#: Process/cluster-backend legs kept in the fast tier; spawning a pool
#: (or loopback fleet) per app is the expensive part, so the rest of
#: the matrix runs as `slow`.
FAST_POOLED_APPS = {"Strassen", "Poisson2D SOR"}

#: The full (app x backend) determinism matrix.
BACKEND_MATRIX = [
    pytest.param(
        name,
        backend,
        marks=[pytest.mark.slow]
        if backend in ("process", "cluster") and name not in FAST_POOLED_APPS
        else [],
        id=f"{name}-{backend}",
    )
    for name in APP_NAMES
    for backend in BACKEND_NAMES
]


def report_key(report: TuningReport):
    """Everything a TuningReport observable promises (sans the
    physical-compute counter, which legitimately varies with cache
    warmth)."""
    return (
        report.best.to_json(),
        report.best_time_s,
        report.tuning_time_s,
        report.evaluations,
        report.sizes,
        report.history,
    )


def tune_app(name: str, workers: int, machine=DESKTOP, seed: int = 1,
             result_cache=None, backend=None, strategy=None,
             batch_lanes=None) -> TuningReport:
    spec = benchmark(name)
    compiled = compile_program(spec.build_program(), machine)
    return autotune(
        compiled,
        canonical_env_factory(name),
        max_size=min(spec.tuning_size, SMALL_SIZES[name]),
        seed=seed,
        accuracy_fn=spec.accuracy_fn,
        accuracy_target=spec.accuracy_target,
        config=TunerConfig.from_env(
            workers=workers, backend=backend, strategy=strategy,
            batch_lanes=batch_lanes,
        ),
        result_cache=result_cache,
    )


#: Serial baselines, tuned once per app and shared by every matrix leg.
_BASELINES: Dict[str, TuningReport] = {}


def baseline_report(name: str) -> TuningReport:
    if name not in _BASELINES:
        _BASELINES[name] = tune_app(
            name, workers=1, backend="serial", result_cache=ResultCache(None)
        )
    return _BASELINES[name]


@pytest.mark.parametrize("name,backend", BACKEND_MATRIX)
def test_backend_matrix_report_identical_to_serial(name, backend):
    """The acceptance matrix: every backend, every registered app.

    All legs run with the disk layer disabled so the pooled backends
    genuinely evaluate on their workers (threads or processes) instead
    of replaying the baseline's cache entries.
    """
    tuned = tune_app(
        name, workers=4, backend=backend, result_cache=ResultCache(None)
    )
    assert report_key(tuned) == report_key(baseline_report(name)), (
        f"backend={backend} diverged from serial on {name}"
    )


#: Non-default strategies in the backend matrix: two apps, every
#: backend, against that strategy's own serial baseline.
STRATEGY_MATRIX_APPS = ("Strassen", "SeparableConv.")

_STRATEGY_BASELINES: Dict[str, TuningReport] = {}


def strategy_baseline(name: str, strategy: str) -> TuningReport:
    key = f"{name}:{strategy}"
    if key not in _STRATEGY_BASELINES:
        _STRATEGY_BASELINES[key] = tune_app(
            name, workers=1, backend="serial",
            result_cache=ResultCache(None), strategy=strategy,
        )
    return _STRATEGY_BASELINES[key]


@pytest.mark.parametrize("name", STRATEGY_MATRIX_APPS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_nondefault_strategy_backend_invariance(name, backend):
    """The ordered-commit layer preserves per-strategy determinism: a
    non-default strategy's report is identical on every backend too."""
    tuned = tune_app(
        name, workers=4, backend=backend,
        result_cache=ResultCache(None), strategy="hillclimb",
    )
    baseline = strategy_baseline(name, "hillclimb")
    assert tuned.strategy == "hillclimb"
    assert report_key(tuned) == report_key(baseline), (
        f"backend={backend} diverged from serial on {name} (hillclimb)"
    )


@pytest.mark.parametrize("workers", [2, 3, 8])
def test_worker_count_never_changes_the_report(workers):
    """The stencil program across several pool widths and machines
    (disk layer disabled — see above)."""
    for machine in (DESKTOP, SERVER, LAPTOP):
        compiled = compile_program(make_stencil_program(5), machine)
        serial = autotune(
            compiled, lambda n: scale_env(n, seed=1), max_size=50_000, seed=9,
            config=TunerConfig.from_env(backend="serial"),
            result_cache=ResultCache(None),
        )
        parallel = autotune(
            compiled, lambda n: scale_env(n, seed=1), max_size=50_000, seed=9,
            config=TunerConfig.from_env(workers=workers, backend="thread"),
            result_cache=ResultCache(None),
        )
        assert report_key(parallel) == report_key(serial), (
            f"workers={workers} diverged on {machine.codename}"
        )


def test_parallel_evaluator_prefetch_does_not_change_accounting(compiled_stencil):
    """Speculative prefetch of configurations that are never committed
    must not touch the logical counters."""
    from repro.core.configuration import default_configuration
    from repro.core.selector import Selector

    with ParallelEvaluator(
        compiled_stencil, lambda n: scale_env(n, seed=1), workers=4,
        result_cache=ResultCache(None),
    ) as evaluator:
        base = default_configuration(compiled_stencil.training_info)
        gpu = base.copy()
        gpu.selectors["Stencil"] = Selector.constant(1)
        evaluator.prefetch([base, gpu], 1024)
        committed = evaluator.evaluate(base, 1024)
        assert evaluator.evaluations == 1
        # The speculative gpu result may already be computed, but only
        # commits count.
        assert evaluator.tuning_time_s == pytest.approx(
            committed.time_s + evaluator.jit.total_compile_time_s
        )


@pytest.mark.parametrize("name", APP_NAMES)
def test_batched_serial_identical_to_scalar_serial(name):
    """Lane-batched evaluation is a pure wall-clock optimisation: a
    serial session with ``batch_lanes=4`` produces a TuningReport
    byte-identical to the scalar serial baseline — whether the app
    qualifies for lane elision (Black-Scholes, SeparableConv.,
    Strassen, Poisson2D SOR, Tridiagonal) or falls back to per-lane
    scalar simulation (Sort's data-dependent pivot, SVD's accuracy
    hook)."""
    batched = tune_app(
        name, workers=1, backend="serial",
        result_cache=ResultCache(None), batch_lanes=4,
    )
    assert report_key(batched) == report_key(baseline_report(name)), (
        f"batch_lanes=4 diverged from scalar serial on {name}"
    )


#: Batched pooled legs: the lane-batchable poster child on the thread
#: backend, plus one process and one cluster leg on a fast pooled app.
BATCHED_POOLED_LEGS = [
    ("SeparableConv.", "thread"),
    ("Strassen", "process"),
    ("Strassen", "cluster"),
]


@pytest.mark.parametrize(
    "name,backend",
    [pytest.param(n, b, id=f"{n}-{b}-batched") for n, b in BATCHED_POOLED_LEGS],
)
def test_batched_pooled_identical_to_serial(name, backend):
    """Batch lanes compose with speculative pooled prefetch: one
    submission carries the whole chunk, results fan back out per lane,
    and the ordered-commit layer keeps the report identical."""
    tuned = tune_app(
        name, workers=4, backend=backend,
        result_cache=ResultCache(None), batch_lanes=4,
    )
    assert report_key(tuned) == report_key(baseline_report(name)), (
        f"backend={backend} batch_lanes=4 diverged from serial on {name}"
    )


def test_batch_lanes_env_knob(monkeypatch, compiled_stencil):
    monkeypatch.setenv("REPRO_TUNER_BATCH_LANES", "4")
    monkeypatch.delenv("REPRO_TUNER_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_TUNER_BACKEND", raising=False)
    tuner = EvolutionaryTuner(
        compiled_stencil, lambda n: scale_env(n, seed=1), max_size=1024
    )
    try:
        assert tuner.evaluator.batch_lanes == 4
    finally:
        tuner.close()


def test_cold_vs_warm_disk_cache_equivalence(tmp_path):
    """A warm cache must replay the cold session bit-for-bit while
    simulating nothing.  Pinned to ``batch_lanes=1``: the
    computed==evaluations identity is a scalar-serial contract (lane
    batching may speculatively compute whole chunks that are later
    discarded, legitimately inflating the physical counter)."""
    cold = tune_app("SeparableConv.", workers=1, backend="serial",
                    result_cache=ResultCache(str(tmp_path)), batch_lanes=1)
    warm = tune_app("SeparableConv.", workers=1, backend="serial",
                    result_cache=ResultCache(str(tmp_path)), batch_lanes=1)
    assert report_key(warm) == report_key(cold)
    assert cold.computed_evaluations == cold.evaluations
    assert warm.computed_evaluations == 0


def test_cold_parallel_vs_warm_serial_equivalence(tmp_path):
    """Cache written by a thread-pool session must satisfy a serial one.

    The warm sessions here (and below) pin ``batch_lanes=1``: a scalar
    serial replay computes exactly the committed sequence, which every
    cold session writes through — so ``computed_evaluations == 0`` is
    guaranteed regardless of how wide the cold session speculated.
    """
    cold = tune_app("Tridiagonal Solver", workers=4, backend="thread",
                    result_cache=ResultCache(str(tmp_path)))
    warm = tune_app("Tridiagonal Solver", workers=1, backend="serial",
                    result_cache=ResultCache(str(tmp_path)), batch_lanes=1)
    assert report_key(warm) == report_key(cold)
    assert warm.computed_evaluations == 0


def test_cold_process_vs_warm_serial_equivalence(tmp_path):
    """Worker *processes* write through the shared disk cache with
    requester-compatible keys: a serial session on the same directory
    must replay a cold process-backend session without simulating."""
    cold = tune_app("Strassen", workers=2, backend="process",
                    result_cache=ResultCache(str(tmp_path)))
    warm = tune_app("Strassen", workers=1, backend="serial",
                    result_cache=ResultCache(str(tmp_path)), batch_lanes=1)
    assert report_key(warm) == report_key(cold)
    assert warm.computed_evaluations == 0


def test_cold_cluster_vs_warm_serial_equivalence(tmp_path):
    """Loopback cluster workers run in-process but write through the
    same shared disk cache with requester-compatible keys: a serial
    session on the same directory must replay a cold cluster-backend
    session without simulating."""
    cold = tune_app("Strassen", workers=2, backend="cluster",
                    result_cache=ResultCache(str(tmp_path)))
    warm = tune_app("Strassen", workers=1, backend="serial",
                    result_cache=ResultCache(str(tmp_path)), batch_lanes=1)
    assert report_key(warm) == report_key(cold)
    assert warm.computed_evaluations == 0


def test_tuner_exposes_parallel_evaluator_only_when_asked(
    monkeypatch, compiled_stencil
):
    monkeypatch.delenv("REPRO_TUNER_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_TUNER_BACKEND", raising=False)
    serial = EvolutionaryTuner(
        compiled_stencil, lambda n: scale_env(n, seed=1), max_size=1024
    )
    parallel = EvolutionaryTuner(
        compiled_stencil, lambda n: scale_env(n, seed=1), max_size=1024,
        config=TunerConfig.from_env(workers=4),
    )
    try:
        assert not isinstance(serial.evaluator, ParallelEvaluator)
        assert isinstance(parallel.evaluator, ParallelEvaluator)
        assert parallel.evaluator.workers == 4
    finally:
        serial.close()
        parallel.close()


def test_workers_env_knob(monkeypatch, compiled_stencil):
    monkeypatch.setenv("REPRO_TUNER_WORKERS", "3")
    monkeypatch.delenv("REPRO_TUNER_BACKEND", raising=False)
    tuner = EvolutionaryTuner(
        compiled_stencil, lambda n: scale_env(n, seed=1), max_size=1024
    )
    try:
        assert isinstance(tuner.evaluator, ParallelEvaluator)
        assert tuner.evaluator.workers == 3
    finally:
        tuner.close()
