"""Strict, consistent parsing of the worker-count environment knobs.

Historically ``int("2 ")`` parsed (``int`` tolerates surrounding
whitespace) while ``int("2.0")`` fell back, so the two knobs' docs and
behaviour drifted.  Both now share one parser: whitespace is stripped
explicitly, anything that is not a plain base-10 integer — floats like
``"2.0"`` included — falls back to the knob's default, and valid
values clamp to at least 1.
"""

from __future__ import annotations

import pytest

from repro.core.parallel import (
    WORKERS_ENV,
    default_worker_count,
    parse_worker_count,
)
from repro.experiments.runner import (
    TUNE_MANY_WORKERS_ENV,
    default_tune_many_workers,
)

#: (raw value, parsed-with-default-D) cases shared by both knobs;
#: "default" marks fall-back to the knob's own default.
CASES = [
    ("2", 2),
    (" 2 ", 2),
    ("\t3\n", 3),
    ("+4", 4),
    ("0", 1),
    ("-3", 1),
    (" -3 ", 1),
    ("2.0", "default"),
    (" 2.0 ", "default"),
    ("2.5", "default"),
    ("1e2", "default"),
    ("", "default"),
    ("   ", "default"),
    ("many", "default"),
    ("2 workers", "default"),
]


@pytest.mark.parametrize("raw,expected", CASES)
def test_parse_worker_count(raw, expected):
    default = 7
    want = default if expected == "default" else expected
    assert parse_worker_count(raw, default) == want


def test_parse_worker_count_unset():
    assert parse_worker_count(None, 5) == 5


@pytest.mark.parametrize("raw,expected", CASES)
def test_tuner_workers_env_knob(monkeypatch, raw, expected):
    monkeypatch.setenv(WORKERS_ENV, raw)
    want = 1 if expected == "default" else expected
    assert default_worker_count() == want


def test_tuner_workers_env_unset(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert default_worker_count() == 1


@pytest.mark.parametrize("raw,expected", CASES)
def test_tune_many_workers_env_knob(monkeypatch, raw, expected):
    monkeypatch.setenv(TUNE_MANY_WORKERS_ENV, raw)
    want = 4 if expected == "default" else expected
    assert default_tune_many_workers() == want


def test_tune_many_workers_env_unset(monkeypatch):
    monkeypatch.delenv(TUNE_MANY_WORKERS_ENV, raising=False)
    assert default_tune_many_workers() == 4


def test_both_knobs_agree_on_every_case(monkeypatch):
    """The consistency property itself: for any raw value, the two
    knobs differ only in their fall-back default."""
    for raw, expected in CASES:
        monkeypatch.setenv(WORKERS_ENV, raw)
        monkeypatch.setenv(TUNE_MANY_WORKERS_ENV, raw)
        if expected == "default":
            assert default_worker_count() == 1
            assert default_tune_many_workers() == 4
        else:
            assert default_worker_count() == expected
            assert default_tune_many_workers() == expected
