"""Unit tests for the transfer model and buffer handles."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.hardware.memory import BufferHandle, BufferState, MemoryKind, MemorySpace
from repro.hardware.transfer import TransferModel


class TestTransferModel:
    def test_affine_cost(self):
        model = TransferModel(latency_s=1e-5, bandwidth_gbs=10.0)
        assert model.transfer_time(0) == pytest.approx(1e-5)
        assert model.transfer_time(10_000_000_000) == pytest.approx(1.0, rel=0.01)

    def test_zero_copy_only_pays_latency(self):
        model = TransferModel(latency_s=2e-6, bandwidth_gbs=60.0, zero_copy=True)
        assert model.transfer_time(10**9) == pytest.approx(2e-6)

    def test_negative_bytes_rejected(self):
        model = TransferModel(latency_s=0, bandwidth_gbs=1)
        with pytest.raises(ValueError):
            model.transfer_time(-1)

    def test_effective_bandwidth_below_peak(self):
        model = TransferModel(latency_s=1e-4, bandwidth_gbs=10.0)
        assert model.effective_bandwidth(1024) < 10.0

    def test_monotone_in_size(self):
        model = TransferModel(latency_s=1e-5, bandwidth_gbs=5.0)
        times = [model.transfer_time(n) for n in (0, 10, 10_000, 10**7)]
        assert times == sorted(times)


class TestMemorySpace:
    def test_bounded_capacity(self):
        space = MemorySpace(MemoryKind.LOCAL, capacity_bytes=48 * 1024, bandwidth_gbs=1000)
        assert space.fits(48 * 1024)
        assert not space.fits(48 * 1024 + 1)

    def test_unbounded_capacity(self):
        space = MemorySpace(MemoryKind.HOST, capacity_bytes=None, bandwidth_gbs=20)
        assert space.fits(10**15)


class TestBufferHandle:
    def test_backing_allocated_lazily(self):
        handle = BufferHandle(matrix_name="m", shape=(4, 4), dtype=np.float64)
        assert handle.data.shape == (4, 4)
        assert handle.nbytes == 128

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DeviceError):
            BufferHandle(
                matrix_name="m", shape=(4, 4), dtype=np.float64,
                data=np.zeros((2, 2)),
            )

    def test_region_tracking(self):
        handle = BufferHandle(matrix_name="m", shape=(8, 8), dtype=np.float64)
        handle.mark_region_valid((0, 4))
        handle.mark_region_valid((4, 8))
        handle.mark_region_valid((0, 4))  # idempotent
        assert handle.covers_whole_matrix(expected_regions=2)
        assert not handle.covers_whole_matrix(expected_regions=3)

    def test_unique_ids(self):
        a = BufferHandle(matrix_name="a", shape=(1,), dtype=np.float64)
        b = BufferHandle(matrix_name="b", shape=(1,), dtype=np.float64)
        assert a.handle_id != b.handle_id


class TestMachineLookup:
    def test_lookup_by_name(self):
        from repro.hardware.machines import machine_by_name, DESKTOP
        assert machine_by_name("desktop") is DESKTOP
        assert machine_by_name("Desktop") is DESKTOP

    def test_unknown_machine(self):
        from repro.hardware.machines import machine_by_name
        with pytest.raises(KeyError):
            machine_by_name("Mainframe")

    def test_standard_machine_order(self):
        from repro.hardware.machines import standard_machines
        names = [m.codename for m in standard_machines()]
        assert names == ["Desktop", "Server", "Laptop"]

    def test_server_uses_16_workers(self):
        """Section 6.1: 16 threads performs best on Server."""
        from repro.hardware.machines import SERVER, DESKTOP, LAPTOP
        assert SERVER.worker_count == 16
        assert DESKTOP.worker_count == 4
        assert LAPTOP.worker_count == 2

    def test_fresh_jit_has_cold_caches(self):
        from repro.hardware.machines import DESKTOP
        jit1 = DESKTOP.fresh_jit()
        jit1.compile("src", "dev")
        jit2 = DESKTOP.fresh_jit()
        assert not jit2.compile("src", "dev").from_ir_cache
