"""Unit tests for the kernel/task cost model — the analytic heart of
the hardware substitution.  These tests pin the qualitative effects
the paper's results depend on."""

import pytest

from repro.errors import DeviceError
from repro.hardware.costmodel import KernelLaunch, cpu_task_time, kernel_time, transfer_bytes
from repro.hardware.device import CPUDevice, DeviceKind, GPUDevice
from repro.hardware.machines import DESKTOP, LAPTOP, SERVER


def gpu(**overrides) -> GPUDevice:
    params = dict(
        name="g",
        kind=DeviceKind.GPU,
        compute_gflops=100.0,
        memory_bandwidth_gbs=50.0,
        launch_overhead_s=1e-5,
        local_memory_effective=True,
        local_memory_load_cost=0.1,
        sequential_gflops=0.1,
    )
    params.update(overrides)
    return GPUDevice(**params)


def cpu_opencl(**overrides) -> GPUDevice:
    return gpu(kind=DeviceKind.CPU_OPENCL, local_memory_effective=False, **overrides)


def launch(**overrides) -> KernelLaunch:
    params = dict(
        work_items=1_000_000,
        flops_per_item=10.0,
        bytes_read_per_item=80.0,
        bytes_written_per_item=8.0,
        bounding_box=10,
        local_work_size=128,
    )
    params.update(overrides)
    return KernelLaunch(**params)


class TestKernelTimeBasics:
    def test_empty_launch_costs_only_overhead(self):
        device = gpu()
        time = kernel_time(launch(work_items=0), device)
        assert time == pytest.approx(device.launch_overhead_s)

    def test_cpu_device_rejected(self):
        cpu = CPUDevice(
            name="c", kind=DeviceKind.CPU, compute_gflops=10,
            memory_bandwidth_gbs=10, launch_overhead_s=0,
        )
        with pytest.raises(DeviceError):
            kernel_time(launch(), cpu)

    def test_time_scales_with_work_items(self):
        device = gpu()
        small = kernel_time(launch(work_items=1000), device)
        large = kernel_time(launch(work_items=1_000_000), device)
        assert large > small

    def test_launch_overhead_included(self):
        fast = gpu(launch_overhead_s=0.0)
        slow = gpu(launch_overhead_s=1e-3)
        delta = kernel_time(launch(), slow) - kernel_time(launch(), fast)
        assert delta == pytest.approx(1e-3)

    def test_roofline_max_of_compute_and_memory(self):
        device = gpu()
        compute_bound = launch(flops_per_item=10_000.0, bytes_read_per_item=1.0)
        memory_bound = launch(flops_per_item=0.1, bytes_read_per_item=8000.0)
        t_c = kernel_time(compute_bound, device)
        expected_c = compute_bound.work_items * 10_000.0 / (100e9)
        assert t_c >= expected_c

        t_m = kernel_time(memory_bound, device)
        expected_m = memory_bound.work_items * 8000.0 / (50e9)
        assert t_m >= expected_m

    def test_invalid_launch_rejected(self):
        with pytest.raises(DeviceError):
            KernelLaunch(
                work_items=-1, flops_per_item=1, bytes_read_per_item=1,
                bytes_written_per_item=1,
            )
        with pytest.raises(DeviceError):
            KernelLaunch(
                work_items=1, flops_per_item=1, bytes_read_per_item=1,
                bytes_written_per_item=1, bounding_box=0,
            )


class TestLocalMemoryEffects:
    """Paper Sections 2.2 / 3.1: when scratchpad prefetching pays off."""

    def test_local_memory_helps_large_stencils_on_gpu(self):
        device = gpu()
        big = launch(bounding_box=49, bytes_read_per_item=8.0 * 49)
        assert kernel_time(big.with_local_memory(True), device) < kernel_time(
            big.with_local_memory(False), device
        )

    def test_local_memory_hurts_on_cpu_opencl(self):
        """On a cache-backed device the prefetch phase is wasted work."""
        device = cpu_opencl()
        big = launch(bounding_box=49, bytes_read_per_item=8.0 * 49)
        assert kernel_time(big.with_local_memory(True), device) > kernel_time(
            big.with_local_memory(False), device
        )

    def test_local_memory_useless_for_elementwise(self):
        """Bounding box of one: threads never share data."""
        device = gpu()
        elementwise = launch(bounding_box=1, bytes_read_per_item=8.0)
        assert kernel_time(elementwise.with_local_memory(True), device) >= kernel_time(
            elementwise.with_local_memory(False), device
        )

    def test_benefit_grows_with_bounding_box(self):
        device = gpu()
        gains = []
        for box in (4, 16, 64):
            base = launch(bounding_box=box, bytes_read_per_item=8.0 * box)
            gain = kernel_time(base.with_local_memory(False), device) / kernel_time(
                base.with_local_memory(True), device
            )
            gains.append(gain)
        assert gains == sorted(gains)


class TestSequentialKernels:
    def test_sequential_runs_at_scalar_rate(self):
        device = gpu(sequential_gflops=0.05)
        serial = launch(sequential=True, flops_per_item=100.0, bytes_read_per_item=1.0)
        parallel = launch(sequential=False, flops_per_item=100.0, bytes_read_per_item=1.0)
        assert kernel_time(serial, device) > 100 * kernel_time(parallel, device)


class TestStridedAccess:
    def test_strided_penalty_applied(self):
        device = gpu(strided_penalty=8.0)
        strided = launch(strided_access=True, bytes_read_per_item=800.0,
                         flops_per_item=0.1)
        normal = launch(strided_access=False, bytes_read_per_item=800.0,
                        flops_per_item=0.1)
        assert kernel_time(strided, device) > 4 * kernel_time(normal, device)

    def test_desktop_gpu_tolerates_strides_better_than_server(self):
        """Fermi-class memory system vs cache-hierarchy OpenCL device."""
        strided = launch(strided_access=True)
        desktop_gpu = DESKTOP.opencl_device
        server_dev = SERVER.opencl_device
        assert desktop_gpu.strided_penalty < server_dev.strided_penalty


class TestCpuTaskTime:
    def test_rejects_negative_cost(self):
        with pytest.raises(DeviceError):
            cpu_task_time(-1, 0, DESKTOP.cpu)

    def test_sequential_slower_than_vectorised(self):
        cpu = DESKTOP.cpu
        assert cpu_task_time(1e8, 0, cpu, sequential=True) > cpu_task_time(
            1e8, 0, cpu, sequential=False
        )

    def test_bandwidth_shared_among_active_cores(self):
        cpu = DESKTOP.cpu
        alone = cpu_task_time(0.0, 1e8, cpu, active_cores=1)
        crowded = cpu_task_time(0.0, 1e8, cpu, active_cores=4)
        assert crowded > alone

    def test_compute_bound_unaffected_by_sharing(self):
        cpu = DESKTOP.cpu
        # Pure-compute tasks only see the (small) turbo effect.
        alone = cpu_task_time(1e9, 0.0, cpu, active_cores=1)
        crowded = cpu_task_time(1e9, 0.0, cpu, active_cores=4)
        assert crowded / alone == pytest.approx(cpu.turbo_single_core, rel=0.01)


class TestTransferBytes:
    def test_dense_array_size(self):
        assert transfer_bytes((10, 10)) == 800
        assert transfer_bytes((4,), itemsize=4) == 16


class TestMachineCalibration:
    """Pin the cross-machine ratios the experiments rely on."""

    def test_desktop_gpu_dwarfs_its_cpu(self):
        assert DESKTOP.opencl_device.compute_gflops > 10 * DESKTOP.cpu.compute_gflops

    def test_laptop_gpu_is_only_a_few_times_its_cpu(self):
        ratio = LAPTOP.opencl_device.compute_gflops / LAPTOP.cpu.compute_gflops
        assert 1.5 < ratio < 5.0

    def test_server_opencl_is_cpu_hosted(self):
        assert SERVER.opencl_device.kind is DeviceKind.CPU_OPENCL
        assert not SERVER.opencl_device.local_memory_effective
        assert SERVER.transfer.zero_copy

    def test_laptop_transfers_cost_more_than_desktop(self):
        nbytes = 8 * 1024 * 1024
        assert LAPTOP.transfer.transfer_time(nbytes) > 0
        assert SERVER.transfer.transfer_time(nbytes) < min(
            DESKTOP.transfer.transfer_time(nbytes),
            LAPTOP.transfer.transfer_time(nbytes),
        )
