"""Unit tests for the simulated OpenCL JIT and its caches (Sec. 5.4)."""

import pytest

from repro.hardware.opencl import OpenCLRuntimeModel


def make_jit(**overrides) -> OpenCLRuntimeModel:
    params = dict(platform_name="test", parse_cost_s=1.0, jit_cost_s=0.5)
    params.update(overrides)
    return OpenCLRuntimeModel(**params)


class TestColdCompiles:
    def test_first_compile_pays_full_cost(self):
        jit = make_jit()
        binary = jit.compile("kernel void k() {}", "dev")
        assert binary.compile_time_s == pytest.approx(1.5)
        assert not binary.from_ir_cache

    def test_distinct_sources_each_pay_parse(self):
        jit = make_jit()
        jit.compile("kernel A", "dev")
        binary = jit.compile("kernel B", "dev")
        assert binary.compile_time_s == pytest.approx(1.5)
        assert jit.ir_hits == 0


class TestIRCache:
    def test_second_compile_skips_parse(self):
        """IR caching skips the parsing and optimisation phases."""
        jit = make_jit()
        jit.compile("kernel void k() {}", "dev")
        binary = jit.compile("kernel void k() {}", "dev")
        assert binary.from_ir_cache
        assert binary.compile_time_s == pytest.approx(0.5)

    def test_ir_cache_is_cross_device(self):
        """The IR is device independent; only the JIT phase is re-run."""
        jit = make_jit()
        jit.compile("src", "dev-a")
        binary = jit.compile("src", "dev-b")
        assert binary.from_ir_cache

    def test_disabled_cache_always_pays_full(self):
        jit = make_jit(ir_cache_enabled=False)
        jit.compile("src", "dev")
        binary = jit.compile("src", "dev")
        assert binary.compile_time_s == pytest.approx(1.5)

    def test_total_time_accumulates(self):
        jit = make_jit()
        jit.compile("a", "dev")
        jit.compile("a", "dev")
        assert jit.total_compile_time_s == pytest.approx(2.0)


class TestBinaryCache:
    def test_binary_cache_eliminates_jit(self):
        """Full binary caching (CUDA-style) removes compile cost
        entirely — the paper's 'would further reduce training times'."""
        jit = make_jit(binary_cache_enabled=True)
        jit.compile("src", "dev")
        binary = jit.compile("src", "dev")
        assert binary.from_binary_cache
        assert binary.compile_time_s == 0.0

    def test_binary_cache_is_per_device(self):
        jit = make_jit(binary_cache_enabled=True)
        jit.compile("src", "dev-a")
        binary = jit.compile("src", "dev-b")
        assert not binary.from_binary_cache


class TestBookkeeping:
    def test_source_hash_stable(self):
        assert OpenCLRuntimeModel.source_hash("x") == OpenCLRuntimeModel.source_hash("x")
        assert OpenCLRuntimeModel.source_hash("x") != OpenCLRuntimeModel.source_hash("y")

    def test_reset_statistics_preserves_caches(self):
        jit = make_jit()
        jit.compile("src", "dev")
        jit.reset_statistics()
        assert jit.compile_count == 0
        binary = jit.compile("src", "dev")
        assert binary.from_ir_cache  # cache survived

    def test_clear_caches(self):
        jit = make_jit()
        jit.compile("src", "dev")
        jit.clear_caches()
        binary = jit.compile("src", "dev")
        assert not binary.from_ir_cache
