"""Unit tests for the device models."""

import pytest

from repro.errors import DeviceError
from repro.hardware.device import CPUDevice, Device, DeviceKind, GPUDevice


def make_gpu(**overrides) -> GPUDevice:
    params = dict(
        name="test-gpu",
        kind=DeviceKind.GPU,
        compute_gflops=100.0,
        memory_bandwidth_gbs=50.0,
        launch_overhead_s=1e-5,
    )
    params.update(overrides)
    return GPUDevice(**params)


def make_cpu(**overrides) -> CPUDevice:
    params = dict(
        name="test-cpu",
        kind=DeviceKind.CPU,
        compute_gflops=40.0,
        memory_bandwidth_gbs=20.0,
        launch_overhead_s=1e-6,
        core_count=4,
    )
    params.update(overrides)
    return CPUDevice(**params)


class TestDeviceValidation:
    def test_negative_compute_rejected(self):
        with pytest.raises(DeviceError):
            make_gpu(compute_gflops=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(DeviceError):
            make_gpu(memory_bandwidth_gbs=0.0)

    def test_negative_launch_overhead_rejected(self):
        with pytest.raises(DeviceError):
            make_gpu(launch_overhead_s=-1e-6)

    def test_warp_width_must_be_positive(self):
        with pytest.raises(DeviceError):
            make_gpu(warp_width=0)

    def test_preferred_local_size_bounded_by_max(self):
        with pytest.raises(DeviceError):
            make_gpu(preferred_local_size=2048, max_local_size=1024)

    def test_cpu_core_count_positive(self):
        with pytest.raises(DeviceError):
            make_cpu(core_count=0)

    def test_gpu_compute_units_positive(self):
        with pytest.raises(DeviceError):
            make_gpu(compute_units=0)


class TestDeviceKinds:
    def test_gpu_is_accelerator(self):
        assert make_gpu().is_accelerator

    def test_cpu_opencl_is_accelerator(self):
        assert make_gpu(kind=DeviceKind.CPU_OPENCL).is_accelerator

    def test_cpu_is_not_accelerator(self):
        assert not make_cpu().is_accelerator


class TestLocalSizeEfficiency:
    def test_peak_at_preferred_size(self):
        gpu = make_gpu(warp_width=32, preferred_local_size=128)
        peak = gpu.local_size_efficiency(128)
        assert peak == pytest.approx(1.0)

    def test_sub_warp_sizes_waste_lanes(self):
        gpu = make_gpu(warp_width=32, preferred_local_size=128)
        assert gpu.local_size_efficiency(8) < gpu.local_size_efficiency(32)

    def test_efficiency_bounded(self):
        gpu = make_gpu()
        for size in (1, 2, 16, 64, 256, 1024, 4096):
            eff = gpu.local_size_efficiency(size)
            assert 0.0 < eff <= 1.0

    def test_oversized_groups_clamped(self):
        gpu = make_gpu(max_local_size=256)
        assert gpu.local_size_efficiency(10_000) == gpu.local_size_efficiency(256)

    def test_large_groups_mildly_penalised(self):
        gpu = make_gpu(warp_width=32, preferred_local_size=128, max_local_size=1024)
        assert gpu.local_size_efficiency(1024) < gpu.local_size_efficiency(128)


class TestTurboScaling:
    def test_single_core_gets_turbo(self):
        cpu = make_cpu(turbo_single_core=1.3)
        assert cpu.per_core_gflops(1) == pytest.approx(10.0 * 1.3)

    def test_full_occupancy_has_no_turbo(self):
        cpu = make_cpu(turbo_single_core=1.3)
        assert cpu.per_core_gflops(4) == pytest.approx(10.0)

    def test_partial_occupancy_interpolates(self):
        cpu = make_cpu(turbo_single_core=1.3)
        two = cpu.per_core_gflops(2)
        assert 10.0 < two < 13.0

    def test_active_cores_clamped(self):
        cpu = make_cpu()
        assert cpu.per_core_gflops(100) == cpu.per_core_gflops(4)
        assert cpu.per_core_gflops(0) == cpu.per_core_gflops(1)

    def test_monotone_in_active_cores(self):
        cpu = make_cpu(turbo_single_core=1.25)
        rates = [cpu.per_core_gflops(k) for k in range(1, 5)]
        assert rates == sorted(rates, reverse=True)


class TestStridedPenalty:
    def test_cpu_default_is_cache_hostile(self):
        assert make_cpu().strided_penalty == pytest.approx(16.0)

    def test_gpu_default_moderate(self):
        assert make_gpu().strided_penalty == pytest.approx(4.0)
