"""Daemon end-to-end: verbs, admission, rate limits, namespaces, wire.

Two gears:

* *Real* tests tune a cheap registry benchmark through the daemon and
  compare against a local serial ``Session.tune`` — the byte-identical
  acceptance check.
* *Fake-pool* tests monkeypatch ``repro.experiments.runner.session_for``
  with a gate that blocks until the test releases it, making admission
  ordering, queue depths and cancellation deterministic instead of
  timing-dependent.
"""

from __future__ import annotations

import re
import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.api import Session, TunerConfig
from repro.cluster import protocol as cluster_protocol
from repro.cluster.protocol import PROTOCOL_VERSION
from repro.core.configuration import Configuration
from repro.core.report import TuningReport, report_to_payload
from repro.errors import ServiceError, ServiceRejected
from repro.experiments.runner import clear_sessions
from repro.service import ServiceClient, ServiceHandle
from repro.service import protocol as verbs
from repro.service.daemon import sanitize_namespace
from repro.service.protocol import recv_frame, send_frame

APP = "Strassen"
MACHINE = "Desktop"


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def _daemon(**overrides) -> ServiceHandle:
    """A daemon on an ephemeral port, serial evaluation, silent."""
    config = TunerConfig.from_env(
        backend="serial",
        progress=False,
        service_address="127.0.0.1:0",
        **overrides,
    )
    return ServiceHandle.start_in_thread(config)


class _FakePool:
    """A gated stand-in for ``runner.session_for``: records calls and
    blocks each one until :meth:`release` fires."""

    def __init__(self):
        self.calls = []
        self.gate = threading.Event()
        self.lock = threading.Lock()

    def __call__(self, app, machine, seed, config, **kwargs):
        with self.lock:
            self.calls.append((app, machine.codename, seed))
        assert self.gate.wait(timeout=30.0), "test forgot to release the gate"
        report = TuningReport(
            best=Configuration(program_name=app, label=f"{machine.codename} Config"),
            best_time_s=1.0,
            tuning_time_s=2.0,
            evaluations=1,
            sizes=[16],
            history=[1.0],
            computed_evaluations=1,
            strategy=config.strategy,
            seed=seed,
        )
        return SimpleNamespace(report=report)

    def release(self):
        self.gate.set()


@pytest.fixture
def fake_pool(monkeypatch):
    pool = _FakePool()
    monkeypatch.setattr("repro.experiments.runner.session_for", pool)
    yield pool
    pool.release()  # never leave daemon jobs blocked at teardown


class TestEndToEnd:
    def test_submit_status_result_matches_local_tune(self, tmp_path):
        """The acceptance check: a report fetched through the daemon is
        byte-identical to a local serial Session.tune.

        Both sides get equally cold private caches: the deterministic
        report fields are cache-invariant, but ``computed_evaluations``
        is a wall-clock work gauge that legitimately differs between a
        warm and a cold run — byte-identity is only meaningful when the
        two runs do the same physical work."""
        with _daemon(cache_dir=str(tmp_path / "daemon")) as daemon:
            with ServiceClient(daemon.address, name="e2e") as client:
                job_id = client.submit(APP, MACHINE)
                assert client.status(job_id) in ("queued", "running", "done")
                remote = client.result(job_id, timeout=300)
                assert client.status(job_id) == "done"
        clear_sessions()  # force the local run to recompute
        with Session(
            TunerConfig.from_env(
                backend="serial", progress=False, cache_dir=str(tmp_path / "local")
            )
        ) as session:
            local = session.tune(APP, MACHINE).report
        assert report_to_payload(remote) == report_to_payload(local)

    def test_lookup_miss_returns_seed_config_and_warms_the_index(self, tmp_path):
        # A private cache directory keeps the first lookup a guaranteed
        # miss: the shared test cache may hold finished checkpoints the
        # daemon's boot scan would otherwise serve as hits.
        with _daemon(cache_dir=str(tmp_path)) as daemon:
            with ServiceClient(daemon.address, name="warmup") as client:
                hit, config_json = client.lookup(APP, MACHINE)
                assert not hit
                seeded = Configuration.from_json(config_json)
                assert seeded.program_name == APP
                # The miss enqueued a warming job; once it lands, the
                # same lookup is a hit served from memory.
                job_id = client.submit(APP, MACHINE)  # dedups onto it
                client.result(job_id, timeout=300)
                hit, report = client.lookup(APP, MACHINE)
                assert hit
                assert isinstance(report, TuningReport)

    def test_resubmitting_a_live_target_is_single_flight(self, fake_pool):
        with _daemon() as daemon:
            with ServiceClient(daemon.address, name="dedup") as client:
                first = client.submit(APP, MACHINE)
                second = client.submit(APP, MACHINE)
                assert first == second
                fake_pool.release()
                client.result(first, timeout=30)
                # Finished jobs still dedup: the answer exists already.
                assert client.submit(APP, MACHINE) == first
                assert len(fake_pool.calls) == 1


class TestAdmission:
    def test_queue_depth_and_capacity_are_visible(self, fake_pool):
        with _daemon(tune_many_workers=4, service_max_jobs=1) as daemon:
            with ServiceClient(daemon.address, name="load") as client:
                assert client.capacity == 1
                running = client.submit(APP, "Desktop")
                queued_1 = client.submit(APP, "Server")
                queued_2 = client.submit(APP, "Laptop")
                metrics = client.metrics()
                assert metrics["capacity"] == 1
                assert metrics["running"] == 1
                assert metrics["queue_depth"] == 2
                assert client.status(running) == "running"
                assert client.status(queued_1) == "queued"
                # Only one job ever reached the pool.
                assert len(fake_pool.calls) == 1
                fake_pool.release()
                for job_id in (running, queued_1, queued_2):
                    client.result(job_id, timeout=30)
                assert client.metrics()["queue_depth"] == 0

    def test_priority_orders_the_queue(self, fake_pool):
        with _daemon(tune_many_workers=4, service_max_jobs=1) as daemon:
            with ServiceClient(daemon.address, name="prio") as client:
                blocker = client.submit(APP, "Desktop")
                low = client.submit(APP, "Server", priority=0)
                high = client.submit(APP, "Laptop", priority=9)
                fake_pool.release()
                for job_id in (blocker, low, high):
                    client.result(job_id, timeout=30)
                machines = [machine for _, machine, _ in fake_pool.calls]
                assert machines == ["Desktop", "Laptop", "Server"]

    def test_cancel_withdraws_a_queued_job(self, fake_pool):
        with _daemon(tune_many_workers=4, service_max_jobs=1) as daemon:
            with ServiceClient(daemon.address, name="cancel") as client:
                blocker = client.submit(APP, "Desktop")
                doomed = client.submit(APP, "Server")
                assert client.cancel(doomed)
                assert client.status(doomed) == "cancelled"
                assert client.metrics()["queue_depth"] == 0
                with pytest.raises(ServiceError, match="cancelled"):
                    client.result(doomed, timeout=5)
                fake_pool.release()
                client.result(blocker, timeout=30)
                # The cancelled job never reached the pool.
                machines = [machine for _, machine, _ in fake_pool.calls]
                assert machines == ["Desktop"]

    def test_result_wait_times_out(self, fake_pool):
        with _daemon() as daemon:
            with ServiceClient(daemon.address, name="waiter") as client:
                job_id = client.submit(APP, MACHINE)
                with pytest.raises(TimeoutError):
                    client.result(job_id, timeout=0.05)
                fake_pool.release()
                client.result(job_id, timeout=30)

    def test_warm_lookup_never_touches_the_pool(self, fake_pool):
        with _daemon() as daemon:
            with ServiceClient(daemon.address, name="hot") as client:
                fake_pool.release()
                job_id = client.submit(APP, MACHINE)
                client.result(job_id, timeout=30)
                calls_before = len(fake_pool.calls)
                for _ in range(5):
                    hit, _report = client.lookup(APP, MACHINE, size=16)
                    assert hit
                metrics = client.metrics()
                assert len(fake_pool.calls) == calls_before
                assert metrics["running"] == 0
                assert metrics["index"]["hits"] >= 5


class TestTenancy:
    def test_rate_limit_rejects_the_third_job(self, fake_pool):
        with _daemon(service_rate_limit=2) as daemon:
            with ServiceClient(daemon.address, name="greedy") as client:
                client.submit(APP, "Desktop")
                client.submit(APP, "Server")
                with pytest.raises(ServiceRejected, match="exceeded"):
                    client.submit(APP, "Laptop")
                assert client.metrics()["rate_limited"] == 1
            # A different client still gets in.
            with ServiceClient(daemon.address, name="patient") as other:
                other.submit(APP, "Laptop")
            fake_pool.release()

    def test_job_ids_are_namespace_scoped(self, fake_pool):
        with _daemon() as daemon:
            with ServiceClient(
                daemon.address, name="alice", namespace="team-a"
            ) as alice, ServiceClient(
                daemon.address, name="bob", namespace="team-b"
            ) as bob:
                job_id = alice.submit(APP, MACHINE)
                with pytest.raises(ServiceRejected, match="unknown job"):
                    bob.status(job_id)
                assert alice.status(job_id) in ("queued", "running")
                fake_pool.release()
                alice.result(job_id, timeout=30)

    def test_namespaces_reach_isolated_cache_directories(self, tmp_path):
        with _daemon(cache_dir=str(tmp_path)) as daemon:
            with ServiceClient(
                daemon.address, name="c", namespace="team-a/../evil"
            ) as client:
                job_id = client.submit(APP, MACHINE)
                client.result(job_id, timeout=300)
            tenants = sorted(p.name for p in (tmp_path / "tenants").iterdir())
        # The namespace was sanitised into one flat directory name:
        # no separators survive, so `..` inside the name is inert text.
        assert tenants == [sanitize_namespace("team-a/../evil")]
        assert "/" not in tenants[0] and "\\" not in tenants[0]
        assert tenants[0] not in (".", "..")

    def test_sanitize_namespace(self):
        # Already-safe names pass through untouched...
        assert sanitize_namespace("team-a") == "team-a"
        assert sanitize_namespace("Team_1.prod") == "Team_1.prod"
        # ...everything else is cleaned and hash-suffixed so the result
        # is still one flat, safe path component.
        for raw in ("  ", "a/b\\c:d", "x" * 200, ".", "..", "team a"):
            cleaned = sanitize_namespace(raw)
            assert re.fullmatch(r"[A-Za-z0-9_.\-]{1,64}", cleaned), cleaned
            assert cleaned not in (".", "..")
        assert sanitize_namespace("a/b\\c:d").startswith("a_b_c_d-")
        assert sanitize_namespace("..").startswith("default-")

    def test_sanitize_namespace_keeps_distinct_tenants_distinct(self):
        """Lossy cleaning must not merge two tenants onto one identity:
        'team a' and 'team_a' are different namespaces and must land in
        different tenant directories (same for dots-only names and long
        names sharing a 64-character prefix)."""
        assert sanitize_namespace("team a") != sanitize_namespace("team_a")
        assert sanitize_namespace("team a") != sanitize_namespace("team-a")
        assert sanitize_namespace(".") != sanitize_namespace("..")
        long_a, long_b = "x" * 100 + "a", "x" * 100 + "b"
        assert sanitize_namespace(long_a) != sanitize_namespace(long_b)
        # Deterministic: the same raw namespace always lands in the
        # same tenant directory across connections and daemon restarts.
        assert sanitize_namespace("team a") == sanitize_namespace("team a")


class TestWire:
    def test_pickle_frames_are_rejected_without_unpickling(self):
        """Security regression: service clients are untrusted, so their
        bytes must never reach ``pickle.loads`` — a pickle that executes
        code on load has to bounce off the JSON decoder instead."""
        executed = []

        class Exploit:
            def __reduce__(self):
                return (executed.append, ("pwned",))

        with _daemon() as daemon:
            host, port = daemon.address.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.sendall(
                    cluster_protocol.encode_message(
                        {"type": "hello", "payload": Exploit()},
                        codec=cluster_protocol.PICKLE,
                    )
                )
                assert recv_frame(sock) is None  # hung up, nothing ran
            assert executed == []
            # ...and the daemon still serves honest clients.
            with ServiceClient(daemon.address, name="honest") as client:
                assert "capacity" in client.metrics()

    def test_pipelined_cancel_overtakes_a_parked_result(self, fake_pool):
        """Regression: requests on one connection are served as
        independent tasks, so a ``cancel`` pipelined behind a parked
        ``result`` (timeout=None) for the same job settles that job
        instead of deadlocking the connection behind it."""
        with _daemon(tune_many_workers=4, service_max_jobs=1) as daemon:
            host, port = daemon.address.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=30) as sock:
                send_frame(sock, verbs.hello("pipeliner", "pipeliner"))
                assert recv_frame(sock)["type"] == "welcome"
                send_frame(
                    sock,
                    {"type": "submit", "req_id": 1, "app": APP, "machine": "Desktop"},
                )
                send_frame(
                    sock,
                    {"type": "submit", "req_id": 2, "app": APP, "machine": "Server"},
                )
                responses = {}
                for _ in range(2):
                    answer = recv_frame(sock)
                    responses[answer["req_id"]] = answer
                doomed = responses[2]["job_id"]  # queued behind Desktop
                # Park an indefinite result wait, then pipeline the
                # cancel for the very job it waits on.
                send_frame(
                    sock,
                    {"type": "result", "req_id": 3, "job_id": doomed, "timeout": None},
                )
                send_frame(sock, {"type": "cancel", "req_id": 4, "job_id": doomed})
                for _ in range(2):
                    answer = recv_frame(sock)
                    responses[answer["req_id"]] = answer
            assert responses[4]["type"] == "cancelled" and responses[4]["ok"]
            assert responses[3]["type"] == "job-result"
            assert responses[3]["state"] == "cancelled"
            fake_pool.release()

    def test_bad_verbs_and_unknown_names_are_rejected(self):
        with _daemon() as daemon:
            with ServiceClient(daemon.address, name="fuzzer") as client:
                with pytest.raises(ServiceRejected, match="unknown benchmark"):
                    client.submit("NotABenchmark", MACHINE)
                with pytest.raises(ServiceRejected, match="unknown machine"):
                    client.submit(APP, "Mainframe")
                with pytest.raises(ServiceRejected, match="unknown job"):
                    client.status("job-999")

    def test_daemon_survives_a_client_that_skips_the_hello(self):
        with _daemon() as daemon:
            host, port = daemon.address.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=5) as sock:
                send_frame(sock, {"type": "metrics", "req_id": 1})
                assert recv_frame(sock) is None  # hung up on us
            # ... and still serves the next well-behaved client.
            with ServiceClient(daemon.address, name="ok") as client:
                assert "capacity" in client.metrics()

    def test_version_mismatch_is_refused(self):
        with _daemon() as daemon:
            host, port = daemon.address.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=5) as sock:
                send_frame(
                    sock,
                    {
                        "type": "hello",
                        "role": "service-client",
                        "version": PROTOCOL_VERSION + 1,
                        "name": "old",
                        "namespace": "old",
                    },
                )
                answer = recv_frame(sock)
                assert answer is not None and answer["type"] == "error"

    def test_unknown_verb_gets_a_typed_error(self):
        with _daemon() as daemon:
            host, port = daemon.address.rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=5) as sock:
                send_frame(
                    sock,
                    {
                        "type": "hello",
                        "role": "service-client",
                        "version": PROTOCOL_VERSION,
                        "name": "x",
                        "namespace": "x",
                    },
                )
                assert recv_frame(sock)["type"] == "welcome"
                send_frame(sock, {"type": "frobnicate", "req_id": 42})
                answer = recv_frame(sock)
                assert answer["type"] == "error"
                assert answer["req_id"] == 42
                assert answer["kind"] == "bad-request"


class TestLongevity:
    """The leaks that only matter in a daemon that never exits."""

    def test_terminal_job_records_are_evicted(self, fake_pool):
        """Regression: terminal jobs (with full report payloads) must
        not accumulate in ``_jobs``/``_dedup`` forever — past the
        history cap the oldest-settled records evict, and the evicted
        target simply becomes submittable again."""
        with _daemon(tune_many_workers=4) as daemon:
            daemon.service.terminal_history = 2
            fake_pool.release()
            with ServiceClient(daemon.address, name="churn") as client:
                job_ids = []
                for seed in range(5):
                    job_id = client.submit(APP, MACHINE, seed=seed)
                    client.result(job_id, timeout=30)
                    job_ids.append(job_id)
                with pytest.raises(ServiceRejected, match="unknown job"):
                    client.status(job_ids[0])
                assert client.status(job_ids[-1]) == "done"
                assert len(daemon.service._jobs) <= 2
                assert len(daemon.service._dedup) <= 2
                # Re-submitting an evicted target makes a fresh job
                # rather than resurrecting the forgotten id.
                assert client.submit(APP, MACHINE, seed=0) not in job_ids

    def test_index_failure_still_settles_the_job_and_frees_the_slot(
        self, fake_pool
    ):
        """Regression: an exception while indexing a finished report
        (malformed payload, index bug) must not swallow the completion
        — the job settles, parked waiters wake, and the admission slot
        is released for the next job."""
        with _daemon(tune_many_workers=4, service_max_jobs=1) as daemon:
            def boom(*args, **kwargs):
                raise RuntimeError("index exploded")

            daemon.service._index.put = boom
            fake_pool.release()
            with ServiceClient(daemon.address, name="idx") as client:
                first = client.submit(APP, "Desktop")
                report = client.result(first, timeout=30)
                assert isinstance(report, TuningReport)
                # Capacity is 1: this only runs if the slot came back.
                second = client.submit(APP, "Server")
                client.result(second, timeout=30)
                assert client.metrics()["running"] == 0


class TestMetrics:
    def test_snapshot_covers_the_advertised_surface(self, fake_pool):
        with _daemon() as daemon:
            with ServiceClient(daemon.address, name="meter") as client:
                fake_pool.release()
                job_id = client.submit(APP, MACHINE)
                client.result(job_id, timeout=30)
                metrics = client.metrics()
        for key in (
            "uptime_s",
            "capacity",
            "queue_depth",
            "running",
            "jobs",
            "index",
            "caches",
            "evaluations",
            "evaluations_per_s",
            "rate_limited",
        ):
            assert key in metrics, key
        assert metrics["jobs"] == {"done": 1}
        assert metrics["uptime_s"] > 0
