"""The ``retune`` service verb and the scan/quarantine metrics.

One real daemon, private cache directory: the first ``retune`` is a
cold tune that also records the tenant's derivation graph; the second
must be served clean out of the memoized graph, byte-identical, and
the fresh report must be visible on the hot ``lookup`` path without
any extra tuning.
"""

from __future__ import annotations

import json

import pytest

from repro.api import TunerConfig
from repro.core.report import report_to_payload
from repro.errors import ServiceRejected
from repro.experiments.runner import clear_sessions
from repro.service import ServiceClient, ServiceHandle

APP = "Strassen"
MACHINE = "Desktop"


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def _daemon(**overrides) -> ServiceHandle:
    config = TunerConfig.from_env(
        backend="serial",
        progress=False,
        service_address="127.0.0.1:0",
        **overrides,
    )
    return ServiceHandle.start_in_thread(config)


def _bytes(report) -> str:
    payload = report_to_payload(report)
    payload.pop("computed_evaluations", None)  # cache-warmth gauge
    return json.dumps(payload, sort_keys=True)


class TestRetuneVerb:
    def test_retune_cold_then_memoized_then_indexed(self, tmp_path):
        with _daemon(cache_dir=str(tmp_path)) as daemon:
            with ServiceClient(daemon.address, name="inc") as client:
                first, provenance = client.retune(APP, MACHINE, timeout=300)
                assert not provenance["clean"]
                assert not provenance["warm_started"]  # nothing prior
                assert first.best.program_name == APP

                second, provenance = client.retune(APP, MACHINE, timeout=300)
                assert provenance["clean"]
                assert provenance["affected"] == []
                assert _bytes(second) == _bytes(first)

                # The re-tuned report is folded into the daemon's hot
                # read path, not just handed back.
                hit, indexed = client.lookup(APP, MACHINE)
                assert hit
                assert _bytes(indexed) == _bytes(first)

    def test_retune_rejects_unknown_targets(self, tmp_path):
        with _daemon(cache_dir=str(tmp_path)) as daemon:
            with ServiceClient(daemon.address, name="inc") as client:
                with pytest.raises(ServiceRejected):
                    client.retune("NoSuchApp", MACHINE)
            with ServiceClient(daemon.address, name="inc2") as client:
                with pytest.raises(ServiceRejected):
                    client.retune(APP, "NoSuchMachine")


class TestScanAndQuarantineMetrics:
    def test_metrics_expose_boot_scan_and_quarantine_counts(self, tmp_path):
        with _daemon(cache_dir=str(tmp_path)) as daemon:
            with ServiceClient(daemon.address, name="ops") as client:
                metrics = client.metrics()
        scans = metrics["checkpoint_scans"]
        # The boot index load scans the shared store.
        assert "base" in scans
        for counter in (
            "scanned", "yielded", "unreadable", "malformed",
            "not_complete", "wrong_version", "stale_model",
        ):
            assert counter in scans["base"]
        pens = metrics["quarantine"]
        assert pens["base"] == {"cache": 0, "checkpoints": 0, "graph": 0}

    def test_quarantine_counts_see_planted_corpses(self, tmp_path):
        import os

        pen = tmp_path / "graph" / "quarantine"
        pen.mkdir(parents=True)
        (pen / "deadbeef.json").write_text("{ torn")
        with _daemon(cache_dir=str(tmp_path)) as daemon:
            with ServiceClient(daemon.address, name="ops") as client:
                metrics = client.metrics()
        assert metrics["quarantine"]["base"]["graph"] == 1
        assert metrics["quarantine"]["base"]["cache"] == 0
