"""Admission control primitives: load gate, rate limiter, event rate."""

from __future__ import annotations

import pytest

from repro.service.admission import AdmissionController, EventRate, RateLimiter


class TestAdmissionController:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_admits_up_to_capacity_then_queues(self):
        gate = AdmissionController(2)
        for job in ("a", "b", "c"):
            gate.enqueue(job)
        assert gate.admit() == "a"
        assert gate.admit() == "b"
        assert gate.admit() is None  # both slots busy
        assert gate.depth == 1
        gate.release()
        assert gate.admit() == "c"
        assert gate.depth == 0

    def test_priority_beats_arrival_order(self):
        gate = AdmissionController(1)
        gate.enqueue("low", priority=0)
        gate.enqueue("high", priority=5)
        gate.enqueue("mid", priority=2)
        order = []
        while True:
            job = gate.admit()
            if job is None:
                break
            order.append(job)
            gate.release()
        assert order == ["high", "mid", "low"]

    def test_fifo_within_a_priority(self):
        gate = AdmissionController(1)
        for job in ("first", "second", "third"):
            gate.enqueue(job, priority=1)
        assert gate.admit() == "first"
        gate.release()
        assert gate.admit() == "second"

    def test_withdrawn_jobs_are_skipped_and_leave_the_depth(self):
        gate = AdmissionController(1)
        gate.enqueue("doomed")
        gate.enqueue("kept")
        gate.withdraw("doomed")
        assert gate.depth == 1
        assert gate.admit() == "kept"
        gate.release()
        assert gate.admit() is None

    def test_release_without_admit_asserts(self):
        gate = AdmissionController(1)
        with pytest.raises(AssertionError):
            gate.release()


class TestRateLimiter:
    def test_zero_limit_means_unlimited(self):
        limiter = RateLimiter(0)
        assert all(limiter.allow("c") for _ in range(1000))
        assert limiter.rejected == 0

    def test_window_caps_and_then_slides(self):
        clock = [0.0]
        limiter = RateLimiter(2, window_s=60.0, clock=lambda: clock[0])
        assert limiter.allow("c")
        assert limiter.allow("c")
        assert not limiter.allow("c")
        assert limiter.rejected == 1
        clock[0] = 61.0  # the first two admissions age out
        assert limiter.allow("c")

    def test_clients_are_limited_independently(self):
        clock = [0.0]
        limiter = RateLimiter(1, clock=lambda: clock[0])
        assert limiter.allow("alice")
        assert limiter.allow("bob")
        assert not limiter.allow("alice")
        assert not limiter.allow("bob")

    def test_idle_clients_are_pruned(self):
        """Client names are caller-chosen, so a churn of unique names
        must not grow the limiter's per-client state without bound in
        a long-lived daemon: deques idle past the window are dropped."""
        clock = [0.0]
        limiter = RateLimiter(5, window_s=60.0, clock=lambda: clock[0])
        for i in range(100):
            assert limiter.allow(f"drive-by-{i}")
        assert len(limiter._events) == 100
        clock[0] = 121.0  # every deque idle for > one full window
        assert limiter.allow("fresh")
        assert len(limiter._events) == 1  # just "fresh"

    def test_active_clients_survive_a_prune(self):
        clock = [0.0]
        limiter = RateLimiter(2, window_s=60.0, clock=lambda: clock[0])
        assert limiter.allow("steady")
        clock[0] = 59.0
        assert limiter.allow("steady")  # still inside the window
        clock[0] = 100.0  # prune fires; steady's last event is recent
        assert limiter.allow("newcomer")
        assert "steady" in limiter._events
        # ...and steady's own window still counts the surviving event.
        assert limiter.allow("steady")
        assert not limiter.allow("steady")


class TestEventRate:
    def test_rate_over_the_window(self):
        clock = [100.0]
        rate = EventRate(window_s=10, clock=lambda: clock[0])
        for _ in range(20):
            rate.tick()
        assert rate.total == 20
        assert rate.per_second() == pytest.approx(2.0)

    def test_old_buckets_age_out(self):
        clock = [100.0]
        rate = EventRate(window_s=10, clock=lambda: clock[0])
        rate.tick(10)
        clock[0] = 150.0  # far past the window
        assert rate.per_second() == 0.0
        assert rate.total == 10  # the lifetime counter never decays

    def test_bucket_reuse_resets_stale_counts(self):
        clock = [100.0]
        rate = EventRate(window_s=10, clock=lambda: clock[0])
        rate.tick(5)
        clock[0] = 110.0  # same slot (110 % 10 == 100 % 10), new second
        rate.tick(1)
        assert rate.per_second() == pytest.approx(0.1)
