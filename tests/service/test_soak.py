"""Daemon soak: concurrent clients, one SIGKILLed mid-request.

The daemon runs in-process; clients are real subprocesses speaking the
real wire protocol.  One client is SIGKILLed while it (very likely)
has a parked ``result`` request outstanding — the daemon must shrug
off the dead connection, keep the orphaned job running, and keep
serving the surviving clients.  Every report fetched through the
daemon is then byte-compared against a serial ``Session.tune`` golden
recomputed cold in the parent.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.api import Session, TunerConfig
from repro.core.report import report_to_payload
from repro.errors import ServiceRejected
from repro.experiments.runner import clear_sessions
from repro.service import ServiceClient, ServiceHandle

SRC = str(pathlib.Path(__file__).resolve().parent.parent.parent / "src")

#: The script each client subprocess runs: submit, fetch, print payload.
_FETCH_CLIENT = """
import json, sys
from repro.service import ServiceClient
address, name, app, machine = sys.argv[1:5]
from repro.core.report import report_to_payload
with ServiceClient(address, name=name, namespace="soak") as client:
    job_id = client.submit(app, machine)
    report = client.result(job_id, timeout=300)
    print(json.dumps(report_to_payload(report), sort_keys=True))
"""

#: The victim: submits, then parks a ``result`` wait it never returns
#: from (the parent SIGKILLs it).  The marker line confirms the submit
#: landed before the kill.
_VICTIM_CLIENT = """
import sys
from repro.service import ServiceClient
address = sys.argv[1]
client = ServiceClient(address, name="victim", namespace="soak")
job_id = client.submit("Strassen", "Desktop")
print("submitted", flush=True)
client.result(job_id, timeout=300)
print("never reached")
"""


def _spawn(script: str, *args: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_CACHE_DIR", None)  # subprocess caches stay off
    return subprocess.Popen(
        [sys.executable, "-c", script, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_sessions()
    yield
    clear_sessions()


def test_daemon_survives_a_sigkilled_client_and_stays_byte_identical(tmp_path):
    pairs = [("Strassen", "Desktop"), ("Strassen", "Server")]
    config = TunerConfig.from_env(
        backend="serial",
        progress=False,
        service_address="127.0.0.1:0",
        cache_dir=str(tmp_path / "daemon"),
    )
    with ServiceHandle.start_in_thread(config) as daemon:
        victim = _spawn(_VICTIM_CLIENT, daemon.address)
        assert victim.stdout.readline().strip() == "submitted"
        # The victim now has a parked `result` outstanding (its job is
        # tuning cold).  Kill it mid-request.
        time.sleep(0.1)
        victim.kill()
        victim.wait(timeout=10)

        # Surviving clients keep submitting and fetching concurrently.
        fetchers = [
            _spawn(_FETCH_CLIENT, daemon.address, f"client-{i}", app, machine)
            for i, (app, machine) in enumerate(pairs)
        ]
        outputs = []
        for fetcher in fetchers:
            stdout, stderr = fetcher.communicate(timeout=300)
            assert fetcher.returncode == 0, stderr
            outputs.append(json.loads(stdout.strip()))

        # The daemon itself still answers; the victim's orphaned job
        # either finished (it shares a target with client-0's fetch and
        # dedups onto the same record) or is still running — never lost.
        with ServiceClient(daemon.address, name="auditor", namespace="soak") as audit:
            metrics = audit.metrics()
            assert metrics["jobs"].get("failed", 0) == 0
            # Cancelling an unknown job still gets a clean rejection,
            # not a wedged daemon.
            with pytest.raises(ServiceRejected):
                audit.cancel("job-999")
            warm_hit, warm = audit.lookup("Strassen", "Desktop")
            assert warm_hit and report_to_payload(warm) == outputs[0]

    # Byte-identity: recompute each pair serially, cold, in-process.
    goldens = []
    for index, (app, machine) in enumerate(pairs):
        clear_sessions()
        with Session(
            TunerConfig.from_env(
                backend="serial",
                progress=False,
                cache_dir=str(tmp_path / f"golden-{index}"),
            )
        ) as session:
            goldens.append(report_to_payload(session.tune(app, machine).report))
    assert outputs == goldens
