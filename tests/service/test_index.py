"""The hot read path's in-memory index and its checkpoint-store boot scan."""

from __future__ import annotations

import json
import os

from repro.core.driver import CHECKPOINT_VERSION, CheckpointStore
from repro.core.result_cache import execution_model_hash
from repro.service.index import ReportIndex

#: A registry program whose program name equals its Figure 8 label.
APP = "Strassen"
MACHINE = "Desktop"


def _report_payload(best_time: float = 0.5) -> dict:
    return {
        "best": json.dumps(
            {
                "label": "x",
                "program": APP,
                "selectors": {},
                "tunables": {},
            },
            sort_keys=True,
            separators=(",", ":"),
        ),
        "best_time_s": best_time,
        "tuning_time_s": 1.0,
        "evaluations": 3,
        "sizes": [16, 64],
        "history": [1.0, 0.5],
        "computed_evaluations": 3,
        "strategy": "evolutionary",
        "seed": 7,
    }


def _identity(**overrides) -> dict:
    identity = {
        "version": CHECKPOINT_VERSION,
        "model": execution_model_hash(),
        "program": APP,
        "machine": MACHINE,
        "fingerprint": "fp",
        "env": "env",
        "accuracy": None,
        "strategy": "evolutionary",
        "seed": 7,
        "sizes": [16, 64],
        "generations": 3,
        "population_size": 8,
    }
    identity.update(overrides)
    return identity


class TestReportIndex:
    def test_get_put_roundtrip_and_counters(self):
        index = ReportIndex()
        assert index.get(APP, MACHINE, "evolutionary", 7, 64) is None
        index.put(APP, MACHINE, "evolutionary", 7, 64, _report_payload())
        hit = index.get(APP, MACHINE, "evolutionary", 7, 64)
        assert hit is not None and hit["best_time_s"] == 0.5
        stats = index.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_every_key_component_discriminates(self):
        index = ReportIndex()
        index.put(APP, MACHINE, "evolutionary", 7, 64, _report_payload())
        assert index.get(APP, "Server", "evolutionary", 7, 64) is None
        assert index.get(APP, MACHINE, "hillclimb", 7, 64) is None
        assert index.get(APP, MACHINE, "evolutionary", 8, 64) is None
        assert index.get(APP, MACHINE, "evolutionary", 7, 16) is None

    def test_put_copies_the_payload(self):
        index = ReportIndex()
        payload = _report_payload()
        index.put(APP, MACHINE, "evolutionary", 7, 64, payload)
        payload["best_time_s"] = 999.0
        assert index.get(APP, MACHINE, "evolutionary", 7, 64)["best_time_s"] == 0.5


class TestBootScan:
    def test_loads_complete_checkpoints(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        identity = _identity()
        store.save(identity, {"complete": True, "report": _report_payload()})
        index = ReportIndex()
        assert index.load_store(store) == 1
        assert index.get(APP, MACHINE, "evolutionary", 7, 64) is not None

    def test_skips_partials_foreign_programs_and_stale_models(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(
            _identity(seed=1), {"complete": False, "journal": [], "strategy_state": {}}
        )
        store.save(
            _identity(seed=2, program="NotARegisteredBenchmark"),
            {"complete": True, "report": _report_payload()},
        )
        store.save(
            _identity(seed=3, model="0000000000000000"),
            {"complete": True, "report": _report_payload()},
        )
        index = ReportIndex()
        assert index.load_store(store) == 0
        assert len(index) == 0

    def test_scan_survives_garbage_files(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(_identity(), {"complete": True, "report": _report_payload()})
        (tmp_path / "tune_garbage.json").write_text("{not json")
        (tmp_path / "tune_notadict.json").write_text("[1, 2]")
        (tmp_path / "unrelated.txt").write_text("ignored")
        index = ReportIndex()
        assert index.load_store(store) == 1

    def test_disabled_store_loads_nothing(self):
        index = ReportIndex()
        assert index.load_store(CheckpointStore(None)) == 0

    def test_program_names_resolve_to_registry_labels(self, tmp_path):
        """Checkpoint identities carry *program* names; the index keys
        on Figure 8 registry labels (they differ for some benchmarks)."""
        store = CheckpointStore(str(tmp_path))
        identity = _identity(program="SeparableConvolution")
        store.save(identity, {"complete": True, "report": _report_payload()})
        index = ReportIndex()
        assert index.load_store(store) == 1
        assert index.get("SeparableConv.", MACHINE, "evolutionary", 7, 64) is not None
        assert index.get("SeparableConvolution", MACHINE, "evolutionary", 7, 64) is None


def test_finished_reports_is_sorted_and_lazy(tmp_path):
    """CheckpointStore.finished_reports yields deterministically (sorted
    file names) and tolerates a vanishing directory."""
    store = CheckpointStore(str(tmp_path / "never_created"))
    assert list(store.finished_reports()) == []
    store = CheckpointStore(str(tmp_path))
    for seed in (3, 1, 2):
        store.save(
            _identity(seed=seed), {"complete": True, "report": _report_payload()}
        )
    names = sorted(os.listdir(tmp_path))
    yielded = [identity["seed"] for identity, _ in store.finished_reports()]
    assert len(yielded) == 3
    # Order follows the sorted file names, independent of save order.
    by_name = [
        json.load(open(tmp_path / name))["identity"]["seed"] for name in names
    ]
    assert yielded == by_name
