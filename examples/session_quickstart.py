"""Session quickstart: the public API for driving the autotuner.

Shows the three verbs of :class:`repro.api.Session` — blocking
``tune``, non-blocking ``submit`` (with streaming progress callbacks),
and concurrent ``run_batch`` — plus the layered ``TunerConfig`` that
feeds them.

Run:  python examples/session_quickstart.py
"""

from __future__ import annotations

from repro.api import Session, TunerConfig

APP = "SeparableConv."
MACHINES = ("Desktop", "Server", "Laptop")


def main() -> None:
    # 1. Resolve the configuration.  Layering is always
    #    defaults < REPRO_* environment < repro.toml < arguments,
    #    and every field remembers where its value came from.
    config = TunerConfig.resolve(backend="thread", workers=2)
    print("resolved configuration:")
    for name, value, source in config.provenance_rows():
        print(f"  {name:<18} {value:<16} ({source})")
    print()

    with Session(config) as session:
        # 2. Non-blocking: submit a job and stream its progress.
        #    status()/result()/cancel() follow concurrent.futures
        #    conventions; on_round fires once per search round.
        job = session.submit(
            APP,
            "Desktop",
            on_round=lambda event: print(
                f"  [{event.program}@{event.machine}] round "
                f"{event.index + 1}/{event.rounds} size={event.size} "
                f"best={event.best_time_s * 1e3:.3f} ms"
            ),
        )
        print(f"submitted {job.app} on {job.machine}: {job.status().value}")
        report = job.report()  # blocks until done
        print(f"job finished: best {report.best_time_s * 1e3:.3f} ms "
              f"after {report.evaluations} candidate tests\n")

        # 3. Blocking batch: tune one benchmark for all three machines
        #    concurrently.  Reports are bit-for-bit identical to tuning
        #    one by one — scheduling only changes wall-clock time.
        batch = session.run_batch([(APP, machine) for machine in MACHINES])
        for (name, codename), tuned in batch.items():
            print(f"{codename:<8} best {tuned.report.best_time_s * 1e3:8.3f} ms "
                  f"(strategy={tuned.report.strategy}, "
                  f"seed={tuned.report.seed})")

        # 4. The cached sessions are shared process-wide: this is free.
        assert session.tune(APP, "Desktop") is batch[(APP, "Desktop")]


if __name__ == "__main__":
    main()
