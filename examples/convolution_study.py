"""Figure 2 in miniature: the four OpenCL mappings of
SeparableConvolution across machines and kernel widths.

Regenerates a reduced version of the paper's Figure 2 — the execution
time of 2-D vs. separable convolution, each with and without
local-memory prefetching, on all three simulated machines — and shows
that the best mapping changes with both machine and kernel width.

Run:  python examples/convolution_study.py
"""

from __future__ import annotations

from repro.experiments.fig2_convolution import MAPPINGS, run_fig2_machine
from repro.hardware.machines import standard_machines

WIDTHS = (3, 7, 17)
SIZE = 512


def main() -> None:
    print("SeparableConvolution: execution time (virtual seconds) of the")
    print("four generated OpenCL mappings, per machine and kernel width\n")

    winners = {}
    for machine in standard_machines():
        panel = run_fig2_machine(
            machine, widths=WIDTHS, size=SIZE, include_autotuner=True
        )
        print(panel.render())
        for width in WIDTHS:
            winners[(machine.codename, width)] = panel.best_mapping(width)
        print()

    print("best mapping per (machine, width):")
    for (machine, width), mapping in winners.items():
        print(f"  {machine:8s} width {width:2d}: {mapping}")

    distinct = set(winners.values())
    print(f"\n{len(distinct)} distinct mappings win somewhere: {sorted(distinct)}")
    print("=> no single hand-written OpenCL program is optimal everywhere,")
    print("   which is exactly the paper's argument for autotuning.")


if __name__ == "__main__":
    main()
