"""Sort: machine-specific poly-algorithms and configuration migration.

Autotunes the Sort benchmark (nine algorithmic choices: insertion,
selection, quick, 2/4-way merge with sequential or parallel merges,
radix, bitonic) on two machines, prints the resulting configurations,
and measures what happens when each configuration runs on the *other*
machine — the paper's Figure 7(d) experiment in miniature.

Run:  python examples/sort_polyalgorithm.py
"""

from __future__ import annotations

import numpy as np

from repro import compile_program, run_program
from repro.apps import sort as sort_app
from repro.core import autotune
from repro.experiments.baselines import gpu_only_sort_config
from repro.experiments.fig6_configs import describe_polyalgorithm
from repro.hardware.machines import DESKTOP, SERVER

N = 2**17


def main() -> None:
    machines = (DESKTOP, SERVER)
    compiled = {m.codename: compile_program(sort_app.build_program(), m)
                for m in machines}
    configs = {}
    for machine in machines:
        report = autotune(
            compiled[machine.codename],
            lambda n: sort_app.make_env(n, seed=0),
            max_size=N,
            seed=3,
            label=f"{machine.codename} Config",
        )
        configs[machine.codename] = report.best
        print(f"{machine.codename} tuned configuration "
              f"({report.best_time_s * 1e3:.3f} ms at n={N}):")
        print("  SortInPlace:",
              describe_polyalgorithm(compiled[machine.codename], report.best,
                                     "SortInPlace", N))
        print()

    print(f"cross-machine migration (n={N}, times in ms, virtual):")
    print(f"{'config':16s} {'on Desktop':>12s} {'on Server':>12s}")
    for label, config in configs.items():
        row = [f"{label} Config"]
        for machine in machines:
            env = sort_app.make_env(N, seed=0)
            result = run_program(compiled[machine.codename], config, env)
            assert np.array_equal(env["Out"], np.sort(env["In"]))
            row.append(f"{result.time_s * 1e3:12.3f}")
        print(f"{row[0]:16s} {row[1]} {row[2]}")

    # The paper's hand-written GPU-only baseline: bitonic sort in OpenCL.
    print("\nGPU-only baseline (PetaBricks bitonic sort on the GPU):")
    for machine in machines:
        config = gpu_only_sort_config(compiled[machine.codename])
        env = sort_app.make_env(N, seed=0)
        result = run_program(compiled[machine.codename], config, env)
        native_env = sort_app.make_env(N, seed=0)
        native = run_program(
            compiled[machine.codename], configs[machine.codename], native_env
        )
        print(f"  {machine.codename}: {result.time_s * 1e3:8.3f} ms "
              f"({result.time_s / native.time_s:.1f}x slower than native)")


if __name__ == "__main__":
    main()
