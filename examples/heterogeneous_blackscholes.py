"""Black-Scholes and the CPU/GPU workload ratio (paper Fig. 7(a)).

Sweeps the autotuner's GPU/CPU workload ratio (1/8 increments, paper
Section 4.3) for the Black-Scholes benchmark on all three machines.
On the Laptop — where the GPU is only a few times faster than the
CPU — splitting the data across both devices beats using either
alone; on the Desktop and Server the GPU/OpenCL backend wins outright.

Run:  python examples/heterogeneous_blackscholes.py
"""

from __future__ import annotations

import numpy as np

from repro import compile_program, default_configuration, run_program
from repro.apps import blackscholes as bs
from repro.core.selector import Selector
from repro.hardware.machines import standard_machines

OPTIONS = 500_000  # the paper's testing input size


def main() -> None:
    for machine in standard_machines():
        compiled = compile_program(bs.build_program(), machine)
        transform = compiled.transform("BlackScholes")
        opencl_index = transform.choice_index("formula/opencl")

        print(f"=== {machine.codename}: {OPTIONS} options, times in ms (virtual)")
        times = {}
        for ratio in range(9):
            config = default_configuration(compiled.training_info)
            if ratio > 0:
                config.selectors["BlackScholes"] = Selector.constant(opencl_index)
                config.tunables["gpu_ratio_BlackScholes"] = ratio
            env = bs.make_env(OPTIONS, seed=0)
            result = run_program(compiled, config, env)
            assert np.allclose(env["Out"], bs.reference(env))
            times[ratio] = result.time_s
            bar = "#" * int(result.time_s / max(times.values()) * 40)
            label = "CPU only " if ratio == 0 else f"GPU {ratio}/8   "
            print(f"  {label} {result.time_s * 1e3:8.3f}  {bar}")

        best_ratio = min(times, key=times.get)
        gpu_only = times[8]
        cpu_only = times[0]
        print(f"  -> best split: {best_ratio}/8 on GPU "
              f"({gpu_only / times[best_ratio]:.2f}x vs GPU-only, "
              f"{cpu_only / times[best_ratio]:.2f}x vs CPU-only)\n")


if __name__ == "__main__":
    main()
