"""Inspect the compiler's OpenCL code generation.

Compiles the Strassen benchmark for the Desktop machine and prints

* the generated OpenCL C source of each kernel variant (the
  local-memory variant shows the cooperative-load phase and barrier),
* the rejection log — which rules could *not* be converted and why
  (Strassen's LAPACK choice is disqualified by the external-library
  check of the paper's phase-two analysis),
* the autotuner-facing training information (selectors and tunables).

Run:  python examples/inspect_kernels.py
"""

from __future__ import annotations

from repro import DESKTOP, compile_program
from repro.apps import strassen


def main() -> None:
    compiled = compile_program(strassen.build_program(), DESKTOP)

    print(f"=== generated kernels ({compiled.kernel_count}) ===========")
    for name, kernel in sorted(compiled.kernels.items()):
        print(f"\n--- {name} [{kernel.variant.value} variant] " + "-" * 20)
        print(kernel.source)

    print("=== rules rejected by the OpenCL conversion ===")
    for key, reason in sorted(compiled.training_info.rejection_log.items()):
        print(f"  {key}: {reason}")

    print("\n=== training information for the autotuner ===")
    for name, spec in sorted(compiled.training_info.selectors.items()):
        print(f"  selector {name}: {spec.num_algorithms} algorithms x "
              f"{spec.max_levels} levels")
    for name, spec in sorted(compiled.training_info.tunables.items()):
        print(f"  tunable  {name}: [{spec.lo}, {spec.hi}] "
              f"default {spec.default} ({spec.scale})")
    print(f"\nconfiguration space: "
          f"10^{compiled.training_info.log10_config_space():.0f}")


if __name__ == "__main__":
    main()
