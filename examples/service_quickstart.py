"""Tuning-as-a-service quickstart: a daemon plus a blocking client.

Boots the tuning service in-process (production deployments run
``python -m repro.service`` instead), then walks the wire verbs with
:class:`repro.service.ServiceClient`:

  * ``lookup`` — the hot read path.  A cold daemon misses, hands back
    the compiler-default configuration immediately, and enqueues a
    warming job in the background so the next caller hits.
  * ``submit``/``status``/``result`` — enqueue a tuning job under
    admission control and block for its report.  Reports fetched
    through the daemon are byte-identical to a local ``Session.tune``.
  * ``metrics`` — queue depth, job states, cache counters and the
    evaluations/s gauge.

Run:  python examples/service_quickstart.py
"""

from __future__ import annotations

import json

from repro.api import TunerConfig
from repro.service import ServiceClient, ServiceHandle

APP = "Strassen"
MACHINE = "Desktop"


def main() -> None:
    # 1. Boot the daemon on an ephemeral port.  Outside an example you
    #    would run `python -m repro.service --address=127.0.0.1:7734`
    #    and point clients at that address.
    config = TunerConfig.from_env(
        backend="serial",
        progress=False,
        service_address="127.0.0.1:0",
    )
    with ServiceHandle.start_in_thread(config) as daemon:
        print(f"daemon listening on {daemon.address}\n")

        with ServiceClient(daemon.address, name="quickstart") as client:
            # 2. The hot read path.  Nothing is tuned yet, so this
            #    misses: we get the safe compiler-default configuration
            #    *now* and the daemon quietly starts tuning behind it.
            hit, fallback = client.lookup(APP, MACHINE)
            print(f"lookup({APP}, {MACHINE}) hit={hit}")
            if not hit:
                default = json.loads(fallback)
                print(f"  miss -> default config {default['label']!r}; "
                      "a warming job was enqueued\n")

            # 3. Submit-and-wait.  This dedups onto the warming job the
            #    lookup miss just enqueued — one tuning run, any number
            #    of interested clients.
            job_id = client.submit(APP, MACHINE)
            print(f"submitted {APP}@{MACHINE} as {job_id} "
                  f"(status={client.status(job_id)})")
            report = client.result(job_id, timeout=600)
            print(f"tuned: best {report.best_time_s * 1e3:.3f} ms "
                  f"after {report.evaluations} candidate tests\n")

            # 4. The same lookup is now answered from the in-memory
            #    index — microseconds, no tuning pool involved.
            hit, warm = client.lookup(APP, MACHINE)
            assert hit and warm.best_time_s == report.best_time_s
            print(f"lookup({APP}, {MACHINE}) hit={hit} "
                  f"best={warm.best_time_s * 1e3:.3f} ms")

            # 5. Operational visibility.
            metrics = client.metrics()
            print("\nmetrics:")
            print(f"  queue depth    {metrics['queue_depth']}")
            print(f"  running        {metrics['running']}")
            print(f"  job states     {metrics['jobs']}")
            print(f"  index          {metrics['index']}")
            print(f"  evaluations/s  {metrics['evaluations_per_s']:.1f}")


if __name__ == "__main__":
    main()
