"""Quickstart: compile, autotune and run one benchmark.

Compiles the SeparableConvolution program for the simulated Desktop
machine, autotunes it, runs the tuned configuration, and checks the
numerical result against a straight-line reference.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DESKTOP, compile_program, default_configuration, run_program
from repro.api import TunerConfig
from repro.apps import separable_convolution as conv
from repro.core import autotune

KERNEL_WIDTH = 7
IMAGE_SIZE = 512


def main() -> None:
    # 1. Build the PetaBricks-style program: one top-level transform
    #    with two algorithmic choices (2-D pass vs. two 1-D passes),
    #    three data-parallel leaf transforms.
    program = conv.build_program(kernel_width=KERNEL_WIDTH)

    # 2. Compile for a machine.  The compiler analyses every rule,
    #    generates OpenCL kernels (global- and local-memory variants)
    #    and emits the training information for the autotuner.
    compiled = compile_program(program, DESKTOP)
    print(f"compiled {program.name!r} for {DESKTOP.codename}")
    print(f"  generated OpenCL kernels : {sorted(compiled.kernels)}")
    print(f"  configuration space      : 10^"
          f"{compiled.training_info.log10_config_space():.0f} configurations")

    # 3. Run the default (all-CPU) configuration.
    env = conv.make_env(IMAGE_SIZE, kernel_width=KERNEL_WIDTH, seed=0)
    default = default_configuration(compiled.training_info)
    base = run_program(compiled, default, env)
    print(f"\ndefault configuration    : {base.time_s * 1e3:8.3f} ms (virtual)")

    # 4. Autotune (evolutionary search over selectors + tunables).
    #    workers=4 evaluates candidates speculatively on a thread pool;
    #    results are bit-for-bit identical to workers=1.  TunerConfig
    #    layers the environment under explicit choices, so setting
    #    REPRO_CACHE_DIR also persists evaluations across runs (a
    #    second quickstart run then re-tunes without re-simulating).
    report = autotune(
        compiled,
        lambda n: conv.make_env(n, kernel_width=KERNEL_WIDTH, seed=0),
        max_size=IMAGE_SIZE,
        seed=0,
        label="Desktop Config",
        config=TunerConfig.from_env(workers=4),
    )
    print(f"autotuned configuration  : {report.best_time_s * 1e3:8.3f} ms "
          f"({base.time_s / report.best_time_s:.1f}x faster, "
          f"{report.evaluations} candidate tests)")

    # 5. Run the tuned configuration and validate the result.
    env = conv.make_env(IMAGE_SIZE, kernel_width=KERNEL_WIDTH, seed=0)
    tuned = run_program(compiled, report.best, env)
    reference = conv.reference(env)
    assert np.allclose(env["Out"], reference), "numerical mismatch!"
    print(f"\nresult verified against the reference "
          f"({env['Out'].shape[0]}x{env['Out'].shape[1]} output)")
    print(f"kernel launches: {tuned.stats.kernel_launches}, "
          f"steals: {tuned.stats.steals}")
    print("\ntuned choice configuration file:")
    print(report.best.to_json())


if __name__ == "__main__":
    main()
